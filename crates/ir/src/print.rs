//! Textual printing of graphs and class tables.
//!
//! The format round-trips through [`crate::parse`]: `print → parse → print`
//! reaches a fixpoint, which the integration tests rely on. Value names in
//! the output are the raw [`InstId`]s (`v17`), block names the raw
//! [`BlockId`]s (`b3`); the parser accepts arbitrary identifiers.

use crate::classes::ClassTable;
use crate::ids::BlockId;
use crate::inst::{Inst, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::fmt::Write as _;

/// Renders a class table as `class` declarations.
pub fn print_class_table(table: &ClassTable) -> String {
    let mut out = String::new();
    for c in table.class_ids() {
        let info = table.class(c);
        let fields: Vec<String> = info
            .fields
            .iter()
            .map(|&f| {
                let fi = table.field(f);
                format!("{}: {}", fi.name, type_str(fi.ty, table))
            })
            .collect();
        let _ = writeln!(out, "class {} {{ {} }}", info.name, fields.join(", "));
    }
    out
}

/// Renders `g` in the textual IR format.
pub fn print_graph(g: &Graph) -> String {
    let table = g.class_table();
    let mut out = String::new();
    let params: Vec<String> = g
        .param_values()
        .iter()
        .map(|&p| format!("{p}: {}", type_str(g.ty(p), table)))
        .collect();
    let _ = writeln!(out, "func @{}({}) {{", g.name, params.join(", "));

    let mut reachable = g.reachable_blocks();
    reachable.sort();
    for b in reachable {
        let _ = writeln!(out, "{b}:");
        for &i in g.block_insts(b) {
            if matches!(g.inst(i), Inst::Param(_)) {
                continue; // params are printed in the signature
            }
            let _ = writeln!(out, "  {}", inst_line(g, b, i));
        }
        let _ = writeln!(out, "  {}", term_line(g, b));
    }
    out.push_str("}\n");
    out
}

fn type_str(ty: Type, table: &ClassTable) -> String {
    match ty {
        Type::Ref(c) => format!("ref {}", table.class(c).name),
        other => other.to_string(),
    }
}

fn const_str(c: ConstValue, table: &ClassTable) -> String {
    match c {
        ConstValue::Int(i) => i.to_string(),
        ConstValue::Bool(b) => b.to_string(),
        ConstValue::Null(cl) => format!("null {}", table.class(cl).name),
        ConstValue::NullArr => "nullarr".to_string(),
    }
}

fn inst_line(g: &Graph, b: BlockId, i: crate::ids::InstId) -> String {
    let table = g.class_table();
    let ty = type_str(g.ty(i), table);
    let body = match g.inst(i) {
        Inst::Const(c) => format!("const {}", const_str(*c, table)),
        Inst::Param(idx) => format!("param {idx}"),
        Inst::Binary { op, lhs, rhs } => format!("{} {lhs}, {rhs}", op.mnemonic()),
        Inst::Compare { op, lhs, rhs } => format!("cmp {} {lhs}, {rhs}", op.mnemonic()),
        Inst::Not(x) => format!("not {x}"),
        Inst::Neg(x) => format!("neg {x}"),
        Inst::Phi { inputs } => {
            let preds = g.preds(b);
            let parts: Vec<String> = preds
                .iter()
                .zip(inputs)
                .map(|(p, v)| format!("{p}: {v}"))
                .collect();
            format!("phi [{}]", parts.join(", "))
        }
        Inst::New { class } => format!("new {}", table.class(*class).name),
        Inst::LoadField { object, field } => {
            let fi = table.field(*field);
            format!("load {object}, {}.{}", table.class(fi.class).name, fi.name)
        }
        Inst::StoreField {
            object,
            field,
            value,
        } => {
            let fi = table.field(*field);
            format!(
                "store {object}, {}.{}, {value}",
                table.class(fi.class).name,
                fi.name
            )
        }
        Inst::InstanceOf { object, class } => {
            format!("instanceof {object}, {}", table.class(*class).name)
        }
        Inst::NewArray { length } => format!("newarray {length}"),
        Inst::ArrayLoad { array, index } => format!("aload {array}, {index}"),
        Inst::ArrayStore {
            array,
            index,
            value,
        } => format!("astore {array}, {index}, {value}"),
        Inst::ArrayLength(a) => format!("alength {a}"),
        Inst::Invoke { args } => {
            let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            if parts.is_empty() {
                "invoke".to_string()
            } else {
                format!("invoke {}", parts.join(", "))
            }
        }
    };
    format!("{i}: {ty} = {body}")
}

fn term_line(g: &Graph, b: BlockId) -> String {
    match g.terminator(b) {
        Terminator::Jump { target } => format!("jump {target}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
            prob_then,
        } => format!("branch {cond}, {then_bb}, {else_bb}, prob {prob_then}"),
        Terminator::Return { value: Some(v) } => format!("return {v}"),
        Terminator::Return { value: None } => "return".to_string(),
        Terminator::Deopt => "deopt".to_string(),
    }
}

impl std::fmt::Display for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_graph(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::inst::CmpOp;
    use std::sync::Arc;

    #[test]
    fn prints_figure1() {
        let mut t = ClassTable::new();
        let c = t.add_class("A");
        t.add_field(c, "x", Type::Int);
        let mut b = GraphBuilder::new("foo", &[Type::Int], Arc::new(t));
        let x = b.param(0);
        let zero = b.iconst(0);
        let cond = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(cond, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        let g = b.finish();
        let text = print_graph(&g);
        assert!(text.contains("func @foo(v0: int)"), "{text}");
        assert!(text.contains("cmp gt v0, v1"), "{text}");
        assert!(text.contains("phi [b1: v0, b2: v1]"), "{text}");
        assert!(text.contains("branch v2, b1, b2, prob 0.5"), "{text}");
        assert!(text.contains("return v5"), "{text}");
    }

    #[test]
    fn prints_class_table() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        t.add_field(a, "x", Type::Int);
        t.add_field(a, "next", Type::Ref(a));
        let text = print_class_table(&t);
        assert_eq!(text, "class A { x: int, next: ref A }\n");
    }

    #[test]
    fn prints_heap_and_array_ops() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("heap", &[], Arc::new(t));
        let obj = b.new_object(a);
        let seven = b.iconst(7);
        b.store(obj, fx, seven);
        let l = b.load(obj, fx);
        let arr = b.new_array(l);
        let v = b.aload(arr, l);
        b.astore(arr, l, v);
        let len = b.alength(arr);
        let r = b.invoke(vec![len, v]);
        b.ret(Some(r));
        let g = b.finish();
        let text = print_graph(&g);
        assert!(text.contains("new A"));
        assert!(text.contains("store v0, A.x, v1"));
        assert!(text.contains("load v0, A.x"));
        assert!(text.contains("newarray v3"));
        assert!(text.contains("invoke v7, v5"));
    }

    #[test]
    fn skips_unreachable_blocks() {
        let mut b = GraphBuilder::new("u", &[], Arc::new(ClassTable::new()));
        b.ret(None);
        let dead = b.new_block();
        let g = b.finish();
        let text = print_graph(&g);
        assert!(!text.contains(&format!("{dead}:")));
    }
}
