//! A reference interpreter for IR graphs.
//!
//! The interpreter serves two purposes in the reproduction:
//!
//! 1. **Differential testing** — every optimization must preserve the
//!    observable result (`Outcome`) of a graph on concrete inputs.
//! 2. **Peak-performance measurement** — it tallies executed instructions
//!    per [`InstKind`]; the cost model turns the tally into dynamic cycle
//!    estimates, which stand in for the paper's wall-clock peak performance
//!    (see DESIGN.md §2).
//!
//! [`Inst::Invoke`] is interpreted as a deterministic opaque call: it mixes
//! its arguments into a hash (reading the shallow integer fields of
//! reference arguments) and then writes that hash back into the first
//! integer field of every reference argument and the first element of every
//! array argument. This makes calls both *observable* (they return data
//! derived from their inputs) and *mutating* (they invalidate memory
//! caches), like real library calls.

use crate::classes::ClassTable;
use crate::ids::{BlockId, ClassId, FieldId, InstId};
use crate::inst::{BinOp, CmpOp, Inst, InstKind, KindCounts, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::fmt;

/// A runtime value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A reference: `None` is null, `Some(ix)` indexes the heap.
    Ref(Option<usize>),
    /// No value (result of effect-only instructions).
    Void,
}

impl Value {
    /// Integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::Int`].
    pub fn unwrap_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Bool`].
    pub fn unwrap_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            other => panic!("expected bool, found {other:?}"),
        }
    }
}

/// One heap cell.
#[derive(Clone, Debug, PartialEq)]
enum HeapCell {
    Object {
        class: ClassId,
        /// Field values, aligned with the class's declared field list.
        fields: Vec<Value>,
    },
    Array {
        elems: Vec<i64>,
    },
}

/// The interpreter heap. May be pre-populated to pass reference arguments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Heap {
    cells: Vec<HeapCell>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an instance of `class` with zeroed/null fields and returns
    /// a reference to it.
    pub fn alloc_object(&mut self, table: &ClassTable, class: ClassId) -> Value {
        let fields = table
            .class(class)
            .fields
            .iter()
            .map(|&f| zero_value(table.field(f).ty))
            .collect();
        self.cells.push(HeapCell::Object { class, fields });
        Value::Ref(Some(self.cells.len() - 1))
    }

    /// Allocates a zeroed integer array of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is negative.
    pub fn alloc_array(&mut self, len: i64) -> Value {
        assert!(len >= 0, "array length must be non-negative");
        self.cells.push(HeapCell::Array {
            elems: vec![0; len as usize],
        });
        Value::Ref(Some(self.cells.len() - 1))
    }

    /// Sets a field of the object referenced by `obj`.
    ///
    /// # Panics
    ///
    /// Panics on null/dangling references or foreign fields.
    pub fn set_field(&mut self, table: &ClassTable, obj: Value, field: FieldId, value: Value) {
        let ix = ref_index(obj).expect("set_field on null");
        match &mut self.cells[ix] {
            HeapCell::Object { class, fields } => {
                let off = field_offset(table, *class, field).expect("field of wrong class");
                fields[off] = value;
            }
            HeapCell::Array { .. } => panic!("set_field on array"),
        }
    }

    /// Reads a field of the object referenced by `obj`.
    ///
    /// # Panics
    ///
    /// Panics on null/dangling references or foreign fields.
    pub fn get_field(&self, table: &ClassTable, obj: Value, field: FieldId) -> Value {
        let ix = ref_index(obj).expect("get_field on null");
        match &self.cells[ix] {
            HeapCell::Object { class, fields } => {
                let off = field_offset(table, *class, field).expect("field of wrong class");
                fields[off]
            }
            HeapCell::Array { .. } => panic!("get_field on array"),
        }
    }

    /// Writes an array element.
    ///
    /// # Panics
    ///
    /// Panics on null references or out-of-bounds indices.
    pub fn set_elem(&mut self, arr: Value, index: i64, value: i64) {
        let ix = ref_index(arr).expect("set_elem on null");
        match &mut self.cells[ix] {
            HeapCell::Array { elems } => elems[index as usize] = value,
            HeapCell::Object { .. } => panic!("set_elem on object"),
        }
    }

    /// Reads an array element.
    ///
    /// # Panics
    ///
    /// Panics on null references or out-of-bounds indices.
    pub fn get_elem(&self, arr: Value, index: i64) -> i64 {
        let ix = ref_index(arr).expect("get_elem on null");
        match &self.cells[ix] {
            HeapCell::Array { elems } => elems[index as usize],
            HeapCell::Object { .. } => panic!("get_elem on object"),
        }
    }

    /// Number of allocated cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

fn ref_index(v: Value) -> Option<usize> {
    match v {
        Value::Ref(r) => r,
        other => panic!("expected reference, found {other:?}"),
    }
}

fn field_offset(table: &ClassTable, class: ClassId, field: FieldId) -> Option<usize> {
    table.class(class).fields.iter().position(|&f| f == field)
}

fn zero_value(ty: Type) -> Value {
    match ty {
        Type::Int => Value::Int(0),
        Type::Bool => Value::Bool(false),
        Type::Ref(_) | Type::Arr => Value::Ref(None),
        Type::Void => Value::Void,
    }
}

/// Why execution stopped without returning normally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Field or array access through a null reference.
    NullPointer,
    /// Array access outside `0..length`.
    IndexOutOfBounds,
    /// `newarray` with a negative length.
    NegativeArraySize,
    /// A [`Terminator::Deopt`] was reached.
    Deopt,
    /// The step budget was exhausted (probably an infinite loop).
    OutOfFuel,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trap::DivByZero => "division by zero",
            Trap::NullPointer => "null pointer dereference",
            Trap::IndexOutOfBounds => "array index out of bounds",
            Trap::NegativeArraySize => "negative array size",
            Trap::Deopt => "deoptimization",
            Trap::OutOfFuel => "out of fuel",
        };
        f.write_str(s)
    }
}

/// The observable outcome of an execution: the returned value or a trap.
pub type Outcome = Result<Value, Trap>;

/// The result of interpreting a graph.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Returned value or trap.
    pub outcome: Outcome,
    /// Executed-instruction tally per kind (including terminators).
    pub counts: KindCounts,
    /// Total executed instructions.
    pub steps: u64,
}

/// Default fuel for [`execute`].
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Interprets `g` on `args` with a fresh heap and [`DEFAULT_FUEL`].
///
/// # Panics
///
/// Panics if `args` does not match the graph's parameter count/types.
pub fn execute(g: &Graph, args: &[Value]) -> ExecResult {
    let mut heap = Heap::new();
    execute_with_heap(g, args, &mut heap, DEFAULT_FUEL)
}

/// Interprets `g` on `args` against a caller-provided heap (for reference
/// arguments) with an explicit step budget.
///
/// # Panics
///
/// Panics if `args` does not match the graph's parameters or if a value of
/// the wrong runtime kind reaches an instruction (ill-typed graphs should
/// be rejected by [`crate::verify`] first).
pub fn execute_with_heap(g: &Graph, args: &[Value], heap: &mut Heap, fuel: u64) -> ExecResult {
    assert_eq!(args.len(), g.param_types().len(), "argument count mismatch");
    let table = g.class_table().clone();
    let mut regs: Vec<Option<Value>> = vec![None; g.inst_count()];
    let mut counts = KindCounts::new();
    let mut steps: u64 = 0;
    let mut block = g.entry();
    let mut prev: Option<BlockId> = None;

    'blocks: loop {
        // Resolve φs of this block first (simultaneous assignment).
        let insts = g.block_insts(block);
        let mut phi_values: Vec<(InstId, Value)> = Vec::new();
        for &i in insts {
            if let Inst::Phi { inputs } = g.inst(i) {
                let pred = prev.expect("phi in entry block");
                let k = g.pred_index(block, pred);
                let v = regs[inputs[k].index()].expect("phi input not evaluated");
                phi_values.push((i, v));
            } else {
                break;
            }
        }
        for (i, v) in phi_values {
            regs[i.index()] = Some(v);
            counts.bump(InstKind::Phi);
            steps += 1;
        }

        let phi_count = g.phis(block).len();
        for &i in &insts[phi_count..] {
            if steps >= fuel {
                return done(Err(Trap::OutOfFuel), counts, steps);
            }
            steps += 1;
            counts.bump(g.inst(i).kind());
            let val = |id: InstId| -> Value { regs[id.index()].expect("use before def") };
            let result: Result<Value, Trap> = match g.inst(i) {
                Inst::Const(c) => Ok(const_value(*c)),
                Inst::Param(ix) => Ok(args[*ix as usize]),
                Inst::Binary { op, lhs, rhs } => {
                    eval_binop(*op, val(*lhs).unwrap_int(), val(*rhs).unwrap_int()).map(Value::Int)
                }
                Inst::Compare { op, lhs, rhs } => {
                    Ok(Value::Bool(eval_cmp(*op, val(*lhs), val(*rhs))))
                }
                Inst::Not(x) => Ok(Value::Bool(!val(*x).unwrap_bool())),
                Inst::Neg(x) => Ok(Value::Int(val(*x).unwrap_int().wrapping_neg())),
                Inst::Phi { .. } => unreachable!("phis handled above"),
                Inst::New { class } => Ok(heap.alloc_object(&table, *class)),
                Inst::LoadField { object, field } => match val(*object) {
                    Value::Ref(None) => Err(Trap::NullPointer),
                    obj @ Value::Ref(Some(_)) => Ok(heap.get_field(&table, obj, *field)),
                    other => panic!("load on {other:?}"),
                },
                Inst::StoreField {
                    object,
                    field,
                    value,
                } => match val(*object) {
                    Value::Ref(None) => Err(Trap::NullPointer),
                    obj @ Value::Ref(Some(_)) => {
                        heap.set_field(&table, obj, *field, val(*value));
                        Ok(Value::Void)
                    }
                    other => panic!("store on {other:?}"),
                },
                Inst::InstanceOf { object, class } => match val(*object) {
                    Value::Ref(None) => Ok(Value::Bool(false)),
                    Value::Ref(Some(ix)) => match &heap.cells[ix] {
                        HeapCell::Object { class: c, .. } => Ok(Value::Bool(c == class)),
                        HeapCell::Array { .. } => Ok(Value::Bool(false)),
                    },
                    other => panic!("instanceof on {other:?}"),
                },
                Inst::NewArray { length } => {
                    let n = val(*length).unwrap_int();
                    if n < 0 {
                        Err(Trap::NegativeArraySize)
                    } else {
                        Ok(heap.alloc_array(n))
                    }
                }
                Inst::ArrayLoad { array, index } => {
                    array_access(heap, val(*array), val(*index).unwrap_int()).map(|(ix, k)| {
                        Value::Int(match &heap.cells[ix] {
                            HeapCell::Array { elems } => elems[k],
                            _ => unreachable!(),
                        })
                    })
                }
                Inst::ArrayStore {
                    array,
                    index,
                    value,
                } => array_access(heap, val(*array), val(*index).unwrap_int()).map(|(ix, k)| {
                    let v = val(*value).unwrap_int();
                    match &mut heap.cells[ix] {
                        HeapCell::Array { elems } => elems[k] = v,
                        _ => unreachable!(),
                    }
                    Value::Void
                }),
                Inst::ArrayLength(a) => match val(*a) {
                    Value::Ref(None) => Err(Trap::NullPointer),
                    Value::Ref(Some(ix)) => match &heap.cells[ix] {
                        HeapCell::Array { elems } => Ok(Value::Int(elems.len() as i64)),
                        _ => panic!("alength on object"),
                    },
                    other => panic!("alength on {other:?}"),
                },
                Inst::Invoke { args: call_args } => {
                    let vals: Vec<Value> = call_args.iter().map(|&a| val(a)).collect();
                    Ok(Value::Int(do_invoke(heap, &table, &vals)))
                }
            };
            match result {
                Ok(v) => regs[i.index()] = Some(v),
                Err(t) => return done(Err(t), counts, steps),
            }
        }

        if steps >= fuel {
            return done(Err(Trap::OutOfFuel), counts, steps);
        }
        steps += 1;
        counts.bump(g.terminator(block).kind());
        match g.terminator(block) {
            Terminator::Jump { target } => {
                prev = Some(block);
                block = *target;
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                let c = regs[cond.index()]
                    .expect("branch cond not evaluated")
                    .unwrap_bool();
                prev = Some(block);
                block = if c { *then_bb } else { *else_bb };
            }
            Terminator::Return { value } => {
                let v = match value {
                    Some(v) => regs[v.index()].expect("return value not evaluated"),
                    None => Value::Void,
                };
                return done(Ok(v), counts, steps);
            }
            Terminator::Deopt => return done(Err(Trap::Deopt), counts, steps),
        }
        continue 'blocks;
    }
}

fn done(outcome: Outcome, counts: KindCounts, steps: u64) -> ExecResult {
    ExecResult {
        outcome,
        counts,
        steps,
    }
}

fn const_value(c: ConstValue) -> Value {
    match c {
        ConstValue::Int(i) => Value::Int(i),
        ConstValue::Bool(b) => Value::Bool(b),
        ConstValue::Null(_) | ConstValue::NullArr => Value::Ref(None),
    }
}

fn eval_binop(op: BinOp, a: i64, b: i64) -> Result<i64, Trap> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
    })
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => op.eval_int(x, y),
        (Value::Bool(x), Value::Bool(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            _ => panic!("ordered comparison of booleans"),
        },
        (Value::Ref(x), Value::Ref(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            _ => panic!("ordered comparison of references"),
        },
        (x, y) => panic!("comparison of {x:?} and {y:?}"),
    }
}

fn array_access(heap: &Heap, arr: Value, index: i64) -> Result<(usize, usize), Trap> {
    match arr {
        Value::Ref(None) => Err(Trap::NullPointer),
        Value::Ref(Some(ix)) => match &heap.cells[ix] {
            HeapCell::Array { elems } => {
                if index < 0 || index as usize >= elems.len() {
                    Err(Trap::IndexOutOfBounds)
                } else {
                    Ok((ix, index as usize))
                }
            }
            _ => panic!("array access on object"),
        },
        other => panic!("array access on {other:?}"),
    }
}

/// The deterministic opaque call (see module docs).
fn do_invoke(heap: &mut Heap, table: &ClassTable, args: &[Value]) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for &a in args {
        match a {
            Value::Int(i) => mix(i as u64),
            Value::Bool(b) => mix(b as u64 + 2),
            Value::Ref(None) => mix(3),
            Value::Ref(Some(ix)) => match &heap.cells[ix] {
                HeapCell::Object { class, fields } => {
                    mix(5 + class.index() as u64);
                    for f in fields {
                        match f {
                            Value::Int(i) => mix(*i as u64),
                            Value::Bool(b) => mix(*b as u64 + 2),
                            Value::Ref(None) => mix(3),
                            Value::Ref(Some(_)) => mix(7),
                            Value::Void => {}
                        }
                    }
                }
                HeapCell::Array { elems } => {
                    mix(11 + elems.len() as u64);
                    if let Some(first) = elems.first() {
                        mix(*first as u64);
                    }
                    if let Some(last) = elems.last() {
                        mix(*last as u64);
                    }
                }
            },
            Value::Void => {}
        }
    }
    let result = h as i64;
    // Mutate reference arguments so calls are observable writers.
    for &a in args {
        if let Value::Ref(Some(ix)) = a {
            match &mut heap.cells[ix] {
                HeapCell::Object { class, fields } => {
                    let class = *class;
                    if let Some(off) = table
                        .class(class)
                        .fields
                        .iter()
                        .position(|&f| table.field(f).ty == Type::Int)
                    {
                        fields[off] = Value::Int(result);
                    }
                }
                HeapCell::Array { elems } => {
                    if let Some(e) = elems.first_mut() {
                        *e = result;
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::parse::parse_module;
    use std::sync::Arc;

    fn run_src(src: &str, args: &[Value]) -> ExecResult {
        let m = parse_module(src).unwrap();
        crate::verify::verify(&m.graphs[0]).unwrap();
        execute(&m.graphs[0], args)
    }

    #[test]
    fn figure1_returns_2_plus_phi() {
        let src = r#"
            func @foo(x: int) {
            entry:
              zero: int = const 0
              c: bool = cmp gt x, zero
              branch c, bt, bf, prob 0.5
            bt:
              jump bm
            bf:
              jump bm
            bm:
              p: int = phi [bt: x, bf: zero]
              two: int = const 2
              sum: int = add two, p
              return sum
            }
        "#;
        assert_eq!(run_src(src, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(run_src(src, &[Value::Int(-3)]).outcome, Ok(Value::Int(2)));
    }

    #[test]
    fn loop_counts_to_n() {
        let src = r#"
            func @count(n: int) {
            entry:
              zero: int = const 0
              one: int = const 1
              jump header
            header:
              i: int = phi [entry: zero, body: next]
              c: bool = cmp lt i, n
              branch c, body, exit, prob 0.9
            body:
              next: int = add i, one
              jump header
            exit:
              return i
            }
        "#;
        let r = run_src(src, &[Value::Int(10)]);
        assert_eq!(r.outcome, Ok(Value::Int(10)));
        assert_eq!(r.counts.get(InstKind::Add), 10);
        assert_eq!(r.counts.get(InstKind::Branch), 11);
    }

    #[test]
    fn traps() {
        let div = "func @d(a: int, b: int) {\nentry:\n  q: int = div a, b\n  return q\n}\n";
        assert_eq!(
            run_src(div, &[Value::Int(1), Value::Int(0)]).outcome,
            Err(Trap::DivByZero)
        );
        assert_eq!(
            run_src(div, &[Value::Int(7), Value::Int(2)]).outcome,
            Ok(Value::Int(3))
        );

        let npe = r#"
            class A { x: int }
            func @n() {
            entry:
              p: ref A = const null A
              v: int = load p, A.x
              return v
            }
        "#;
        assert_eq!(run_src(npe, &[]).outcome, Err(Trap::NullPointer));

        let oob = r#"
            func @o() {
            entry:
              one: int = const 1
              a: arr = newarray one
              two: int = const 2
              v: int = aload a, two
              return v
            }
        "#;
        assert_eq!(run_src(oob, &[]).outcome, Err(Trap::IndexOutOfBounds));

        let neg = r#"
            func @g() {
            entry:
              m: int = const -1
              a: arr = newarray m
              return
            }
        "#;
        assert_eq!(run_src(neg, &[]).outcome, Err(Trap::NegativeArraySize));
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let src = "func @inf() {\nentry:\n  jump entry2\nentry2:\n  jump entry2\n}\n";
        let m = parse_module(src).unwrap();
        let mut heap = Heap::new();
        let r = execute_with_heap(&m.graphs[0], &[], &mut heap, 100);
        assert_eq!(r.outcome, Err(Trap::OutOfFuel));
    }

    #[test]
    fn heap_round_trip() {
        let src = r#"
            class P { x: int, y: int }
            func @f() {
            entry:
              p: ref P = new P
              a: int = const 11
              b: int = const 31
              s1: void = store p, P.x, a
              s2: void = store p, P.y, b
              l1: int = load p, P.x
              l2: int = load p, P.y
              sum: int = add l1, l2
              return sum
            }
        "#;
        assert_eq!(run_src(src, &[]).outcome, Ok(Value::Int(42)));
    }

    #[test]
    fn instanceof_distinguishes_classes_and_null() {
        let src = r#"
            class A { }
            class B { }
            func @f(c: bool) {
            entry:
              branch c, ba, bb, prob 0.5
            ba:
              oa: ref A = new A
              ta: bool = instanceof oa, A
              return
            bb:
              n: ref A = const null A
              tn: bool = instanceof n, A
              return
            }
        "#;
        // Just execute both paths; detailed checks below with builder.
        run_src(src, &[Value::Bool(true)]);
        run_src(src, &[Value::Bool(false)]);

        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let b_cl = t.add_class("B");
        let mut bd = GraphBuilder::new("t", &[], Arc::new(t));
        let obj = bd.new_object(a);
        let is_a = bd.instance_of(obj, a);
        let is_b = bd.instance_of(obj, b_cl);
        let eq = bd.cmp(CmpOp::Eq, is_a, is_b);
        let _ = eq;
        bd.ret(Some(is_a));
        let g = bd.finish();
        assert_eq!(execute(&g, &[]).outcome, Ok(Value::Bool(true)));
    }

    #[test]
    fn invoke_is_deterministic_and_mutates() {
        let src = r#"
            class A { x: int }
            func @f() {
            entry:
              o: ref A = new A
              five: int = const 5
              s: void = store o, A.x, five
              r1: int = invoke o
              after: int = load o, A.x
              eq: bool = cmp eq r1, after
              return eq
            }
        "#;
        // The call writes its result into o.x, so r1 == after.
        assert_eq!(run_src(src, &[]).outcome, Ok(Value::Bool(true)));
        // Determinism: same program, same result.
        let r_a = run_src(src, &[]).outcome;
        let r_b = run_src(src, &[]).outcome;
        assert_eq!(r_a, r_b);
    }

    #[test]
    fn shift_ops_mask_count() {
        let src = "func @s(a: int, b: int) {\nentry:\n  r: int = shl a, b\n  return r\n}\n";
        assert_eq!(
            run_src(src, &[Value::Int(1), Value::Int(65)]).outcome,
            Ok(Value::Int(2))
        );
    }

    #[test]
    fn ref_args_via_prebuilt_heap() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let table = Arc::new(t);
        let mut b = GraphBuilder::new("get", &[Type::Ref(a)], table.clone());
        let p = b.param(0);
        let v = b.load(p, fx);
        b.ret(Some(v));
        let g = b.finish();
        let mut heap = Heap::new();
        let obj = heap.alloc_object(&table, a);
        heap.set_field(&table, obj, fx, Value::Int(99));
        let r = execute_with_heap(&g, &[obj], &mut heap, DEFAULT_FUEL);
        assert_eq!(r.outcome, Ok(Value::Int(99)));
    }

    #[test]
    fn deopt_outcome() {
        let src = "func @d() {\nentry:\n  deopt\n}\n";
        assert_eq!(run_src(src, &[]).outcome, Err(Trap::Deopt));
    }
}
