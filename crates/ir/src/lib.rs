//! # dbds-ir — SSA intermediate representation
//!
//! The IR substrate for the reproduction of *Dominance-Based Duplication
//! Simulation (DBDS)* (Leopoldseder et al., CGO 2018). It provides a
//! scheduled SSA control-flow graph — the form Graal IR takes after
//! scheduling — with explicit φ instructions at control-flow merges,
//! heap operations (objects, fields, arrays), opaque calls and
//! profile-annotated branches.
//!
//! The crate contains:
//!
//! - the graph data structure with an invariant-preserving edge-mutation
//!   API ([`Graph`]),
//! - an ergonomic [`GraphBuilder`],
//! - a structural + SSA [`verify`]er,
//! - a round-trippable textual format ([`print_graph`] / [`parse_module`]),
//! - a reference interpreter with per-instruction-kind execution counters
//!   ([`execute`]), which higher layers combine with the node cost model to
//!   obtain the paper's machine-independent peak-performance metric.
//!
//! # Examples
//!
//! Build and run Figure 1a of the paper:
//!
//! ```
//! use dbds_ir::{execute, ClassTable, CmpOp, GraphBuilder, Type, Value};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new("foo", &[Type::Int], Arc::new(ClassTable::new()));
//! let x = b.param(0);
//! let zero = b.iconst(0);
//! let cond = b.cmp(CmpOp::Gt, x, zero);
//! let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
//! b.branch(cond, bt, bf, 0.5);
//! b.switch_to(bt);
//! b.jump(bm);
//! b.switch_to(bf);
//! b.jump(bm);
//! b.switch_to(bm);
//! let phi = b.phi(vec![x, zero], Type::Int);
//! let two = b.iconst(2);
//! let sum = b.add(two, phi);
//! b.ret(Some(sum));
//! let graph = b.finish();
//!
//! assert_eq!(execute(&graph, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod builder;
mod classes;
mod graph;
mod hash;
mod ids;
mod inst;
mod interp;
pub mod lint;
mod parse;
mod print;
mod types;
mod verify;

pub use builder::GraphBuilder;
pub use classes::{ClassInfo, ClassTable, FieldInfo};
pub use graph::{Graph, GraphSnapshot, InstData, UndoStats};
pub use hash::{content_hash, fnv1a, Fnv64};
pub use ids::{BlockId, ClassId, FieldId, InstId};
pub use inst::{BinOp, CmpOp, Inst, InstKind, KindCounts, Terminator};
pub use interp::{
    execute, execute_with_heap, ExecResult, Heap, Outcome, Trap, Value, DEFAULT_FUEL,
};
pub use lint::{lint, Diagnostic, LintId, LintPass, LintRegistry, LintReport, Severity};
pub use parse::{parse_graph, parse_module, Module, ParseError};
pub use print::{print_class_table, print_graph};
pub use types::{ConstValue, Type};
pub use verify::{verify, VerifyErrors};
