//! The SSA control-flow graph.
//!
//! A [`Graph`] is one compilation unit: an arena of instructions, an arena
//! of basic blocks, and a shared [`ClassTable`]. Instructions are owned by
//! blocks in execution order, with φs constrained to a prefix of each
//! block's instruction list. Every block stores its predecessor list, and
//! the *i*-th input of every φ corresponds to the *i*-th predecessor — the
//! edge-mutation API below is the only way to change edges and keeps this
//! alignment invariant intact.

use crate::classes::ClassTable;
use crate::ids::{BlockId, InstId};
use crate::inst::{Inst, Terminator};
use crate::types::Type;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of version stamps for [`Graph`] mutation epochs.
///
/// Process-global so a stamp is never reused, even across graphs or after a
/// graph is rolled back to an earlier clone (`*g = backup`): a cache entry
/// recorded under some stamp can only ever describe the one graph state that
/// carried it. Clones share their original's stamps — which is exactly right,
/// because a clone is bit-identical until its first own mutation.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// An instruction together with its result type and owning block.
#[derive(Clone, Debug)]
pub struct InstData {
    /// The instruction payload.
    pub inst: Inst,
    /// The type of the produced value ([`Type::Void`] if none).
    pub ty: Type,
    /// The block currently containing the instruction, or `None` when the
    /// instruction has been removed from the graph.
    block: Option<BlockId>,
}

/// A basic block: φs, then ordinary instructions, then one terminator.
#[derive(Clone, Debug)]
struct BlockData {
    /// Instructions in execution order; all φs precede all non-φs.
    insts: Vec<InstId>,
    /// The block terminator.
    term: Terminator,
    /// Predecessor blocks. Gives the input order for this block's φs.
    preds: Vec<BlockId>,
}

/// One open transaction of the undo log: the first-touch backups needed
/// to restore the graph to its state at the matching
/// [`Graph::begin_txn`].
///
/// A frame records, per arena slot, the value the slot had when the
/// frame was opened — captured by the *first* mutation that touches it
/// while the frame is open (see [`Graph::touch_inst`]). Slots allocated
/// after the frame opened need no backup: rollback truncates the arenas
/// back to the frame's base lengths (nothing ever deallocates a slot
/// except rollback itself, and inner frames only truncate to bases at
/// least as large).
#[derive(Debug)]
struct TxnFrame {
    /// Arena lengths at `begin_txn`: slots at or past these indices were
    /// allocated inside the transaction and are dropped by rollback.
    base_insts: usize,
    base_blocks: usize,
    /// Version stamps at `begin_txn`, restored verbatim by rollback.
    /// ABA-safe: stamps are globally unique and never reused, so a cache
    /// entry keyed on them can only describe this exact pre-txn state.
    cfg_version: u64,
    value_version: u64,
    /// First-touch backups of instruction / block slots mutated while
    /// this frame was open (only slots below the bases are recorded).
    saved_insts: HashMap<usize, InstData>,
    saved_blocks: HashMap<usize, BlockData>,
    /// Differential-checking shadow: a full snapshot taken at
    /// `begin_txn`, cross-checked against the undo-log restore on every
    /// rollback.
    #[cfg(feature = "debug-snapshot-check")]
    shadow: Box<Graph>,
}

impl TxnFrame {
    fn entries(&self) -> usize {
        self.saved_insts.len() + self.saved_blocks.len()
    }
}

/// The graph's undo log: a stack of open [`TxnFrame`]s plus cumulative
/// counters ([`Graph::undo_stats`]).
///
/// Recording discipline: every mutating primitive backs up each arena
/// slot it is about to change into *every* open frame that does not
/// already hold it (and whose base covers the slot) **before** mutating.
/// A recorded backup therefore always equals the slot's value at the
/// frame's `begin_txn` — any earlier in-frame mutation of the slot would
/// itself have recorded it first — so committing an inner frame is just
/// dropping it: the outer frames already hold their own backups.
#[derive(Debug, Default)]
struct UndoLog {
    frames: Vec<TxnFrame>,
    /// Primitive mutations recorded while at least one frame was open.
    edits: u64,
    /// Frames rolled back.
    rollbacks: u64,
    /// Peak total backup entries across all open frames.
    peak_entries: usize,
}

impl UndoLog {
    fn note_peak(&mut self) {
        let entries: usize = self.frames.iter().map(TxnFrame::entries).sum();
        if entries > self.peak_entries {
            self.peak_entries = entries;
        }
    }
}

/// Cumulative undo-log counters of a [`Graph`], as returned by
/// [`Graph::undo_stats`]. All three values are deterministic functions
/// of the mutation sequence (no timing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UndoStats {
    /// Primitive mutations recorded while a transaction was open.
    pub edits: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
    /// Peak number of backed-up arena slots held by the log at any
    /// point — the O(edit) analog of a whole-graph snapshot's size.
    pub peak_entries: usize,
}

/// An SSA control-flow graph for a single compilation unit.
///
/// # Examples
///
/// ```
/// use dbds_ir::{ClassTable, ConstValue, Graph, Inst, Terminator, Type};
/// use std::sync::Arc;
///
/// let mut g = Graph::new("answer", &[], Arc::new(ClassTable::new()));
/// let entry = g.entry();
/// let c = g.append_inst(entry, Inst::Const(ConstValue::Int(42)), Type::Int);
/// g.set_terminator(entry, Terminator::Return { value: Some(c) });
/// assert_eq!(g.block_insts(entry), &[c]);
/// ```
///
/// # Transactions
///
/// Mutations can be bracketed by [`Graph::begin_txn`] /
/// [`Graph::commit_txn`] / [`Graph::rollback_txn`]: rollback restores
/// the graph *and* its version stamps to the `begin_txn` state in
/// O(slots touched) instead of the O(graph) a
/// [`snapshot`](Graph::snapshot)-and-restore costs. Transactions nest.
#[derive(Debug)]
pub struct Graph {
    /// Human-readable compilation unit name.
    pub name: String,
    params: Vec<Type>,
    param_values: Vec<InstId>,
    entry: BlockId,
    insts: Vec<InstData>,
    blocks: Vec<BlockData>,
    class_table: Arc<ClassTable>,
    /// Epoch of the last CFG-structural mutation (blocks, edges, branch
    /// probabilities). Keys CFG-level analyses: dominators, loops,
    /// frequencies.
    cfg_version: u64,
    /// Epoch of the last mutation of any kind. A CFG mutation bumps both
    /// levels; a pure value rewrite bumps only this one, so CFG-level
    /// analyses survive it.
    value_version: u64,
    /// Open transactions and their first-touch backups.
    undo: UndoLog,
}

impl Clone for Graph {
    /// Clones the arenas, the class table, and the version stamps — but
    /// **not** the undo log: the clone starts with no open transactions
    /// and zeroed undo counters. A clone is an independent timeline;
    /// rolling back the original must never entangle it.
    fn clone(&self) -> Self {
        Graph {
            name: self.name.clone(),
            params: self.params.clone(),
            param_values: self.param_values.clone(),
            entry: self.entry,
            insts: self.insts.clone(),
            blocks: self.blocks.clone(),
            class_table: Arc::clone(&self.class_table),
            cfg_version: self.cfg_version,
            value_version: self.value_version,
            undo: UndoLog::default(),
        }
    }
}

impl Graph {
    /// Creates a graph with an entry block containing one [`Inst::Param`]
    /// per element of `params`. The entry terminator starts as
    /// [`Terminator::Deopt`] and should be replaced before use.
    pub fn new(name: impl Into<String>, params: &[Type], class_table: Arc<ClassTable>) -> Self {
        let mut g = Graph {
            name: name.into(),
            params: params.to_vec(),
            param_values: Vec::new(),
            entry: BlockId(0),
            insts: Vec::new(),
            blocks: vec![BlockData {
                insts: Vec::new(),
                term: Terminator::Deopt,
                preds: Vec::new(),
            }],
            class_table,
            cfg_version: fresh_version(),
            value_version: 0,
            undo: UndoLog::default(),
        };
        g.value_version = g.cfg_version;
        for (i, &ty) in params.iter().enumerate() {
            assert!(!ty.is_void(), "parameters cannot be void");
            let id = g.append_inst(g.entry, Inst::Param(i as u32), ty);
            g.param_values.push(id);
        }
        g
    }

    /// The shared class table.
    pub fn class_table(&self) -> &Arc<ClassTable> {
        &self.class_table
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The graph's current mutation epoch: changes after *every* mutation.
    ///
    /// Stamps are globally unique across all graphs and never reused, so two
    /// equal stamps always describe the same graph contents. Cloning keeps
    /// the stamp (the clone is identical); the first mutation of either copy
    /// gives it a fresh one.
    pub fn version(&self) -> u64 {
        self.value_version
    }

    /// The epoch of the last CFG-structural mutation (block/edge/probability
    /// changes). Unchanged by pure value rewrites, so analyses derived only
    /// from the block structure (dominators, loops, frequencies) stay valid
    /// while this stays equal.
    pub fn cfg_version(&self) -> u64 {
        self.cfg_version
    }

    /// Records a CFG-structural mutation (also a value-level one: CFG edits
    /// can move or drop instructions, e.g. φ inputs).
    fn bump_cfg(&mut self) {
        self.note_edit();
        self.cfg_version = fresh_version();
        self.value_version = self.cfg_version;
    }

    /// Records a value-level mutation that leaves the block structure alone.
    fn bump_value(&mut self) {
        self.note_edit();
        self.value_version = fresh_version();
    }

    /// Counts one primitive mutation towards the undo log's edit counter.
    /// Every mutating primitive calls exactly one of [`Graph::bump_cfg`] /
    /// [`Graph::bump_value`] exactly once, so hooking the counter there
    /// counts each primitive once.
    fn note_edit(&mut self) {
        if !self.undo.frames.is_empty() {
            self.undo.edits += 1;
        }
    }

    /// Backs up instruction slot `id` into every open frame that does not
    /// hold it yet. Must be called **before** the slot is mutated. Slots
    /// allocated after a frame opened are skipped for that frame —
    /// rollback's arena truncation drops them.
    fn touch_inst(&mut self, id: InstId) {
        if self.undo.frames.is_empty() {
            return;
        }
        let insts = &self.insts;
        for frame in &mut self.undo.frames {
            if id.index() < frame.base_insts {
                frame
                    .saved_insts
                    .entry(id.index())
                    .or_insert_with(|| insts[id.index()].clone());
            }
        }
        self.undo.note_peak();
    }

    /// Backs up block slot `b` into every open frame that does not hold
    /// it yet. Same contract as [`Graph::touch_inst`].
    fn touch_block(&mut self, b: BlockId) {
        if self.undo.frames.is_empty() {
            return;
        }
        let blocks = &self.blocks;
        for frame in &mut self.undo.frames {
            if b.index() < frame.base_blocks {
                frame
                    .saved_blocks
                    .entry(b.index())
                    .or_insert_with(|| blocks[b.index()].clone());
            }
        }
        self.undo.note_peak();
    }

    /// Opens a transaction: subsequent mutations record first-touch
    /// backups so [`Graph::rollback_txn`] can restore this exact state —
    /// arena contents *and* version stamps — in O(slots touched).
    /// Transactions nest; each `begin_txn` must be matched by one
    /// [`Graph::commit_txn`] or [`Graph::rollback_txn`].
    pub fn begin_txn(&mut self) {
        let frame = TxnFrame {
            base_insts: self.insts.len(),
            base_blocks: self.blocks.len(),
            cfg_version: self.cfg_version,
            value_version: self.value_version,
            saved_insts: HashMap::new(),
            saved_blocks: HashMap::new(),
            #[cfg(feature = "debug-snapshot-check")]
            shadow: Box::new(self.clone()),
        };
        self.undo.frames.push(frame);
    }

    /// Closes the innermost transaction, keeping its mutations. O(1):
    /// enclosing frames already hold their own first-touch backups (every
    /// mutation records into all open frames), so the committed frame is
    /// simply dropped. Returns the number of backup entries it held.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn commit_txn(&mut self) -> usize {
        let frame = self
            .undo
            .frames
            .pop()
            .expect("commit_txn without an open transaction");
        frame.entries()
    }

    /// Rolls the innermost transaction back: every backed-up slot is
    /// restored, slots allocated inside the transaction are dropped, and
    /// both version stamps return to their `begin_txn` values. Because
    /// stamps are never reused, analysis-cache entries recorded under the
    /// pre-txn stamps become valid again — exactly as restoring a
    /// [`GraphSnapshot`] would. Returns the number of entries restored.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open, or (with the
    /// `debug-snapshot-check` feature) if the undo-log restore diverges
    /// from a full snapshot restore.
    pub fn rollback_txn(&mut self) -> usize {
        let frame = self
            .undo
            .frames
            .pop()
            .expect("rollback_txn without an open transaction");
        let entries = frame.entries();
        for (idx, data) in frame.saved_insts {
            self.insts[idx] = data;
        }
        for (idx, data) in frame.saved_blocks {
            self.blocks[idx] = data;
        }
        self.insts.truncate(frame.base_insts);
        self.blocks.truncate(frame.base_blocks);
        self.cfg_version = frame.cfg_version;
        self.value_version = frame.value_version;
        self.undo.rollbacks += 1;
        #[cfg(feature = "debug-snapshot-check")]
        self.assert_matches_shadow(&frame.shadow);
        entries
    }

    /// Differential cross-check of the undo-log restore against the full
    /// snapshot taken at `begin_txn`. Compiled in only with the
    /// `debug-snapshot-check` feature.
    #[cfg(feature = "debug-snapshot-check")]
    fn assert_matches_shadow(&self, shadow: &Graph) {
        let digest = |g: &Graph| {
            format!(
                "{:?}|{:?}|{}|{}",
                g.insts, g.blocks, g.cfg_version, g.value_version
            )
        };
        assert_eq!(
            digest(self),
            digest(shadow),
            "undo-log rollback diverged from snapshot restore"
        );
    }

    /// Number of transactions currently open.
    pub fn txn_depth(&self) -> usize {
        self.undo.frames.len()
    }

    /// Cumulative undo-log counters since this graph was created (or
    /// cloned — cloning resets them).
    pub fn undo_stats(&self) -> UndoStats {
        UndoStats {
            edits: self.undo.edits,
            rollbacks: self.undo.rollbacks,
            peak_entries: self.undo.peak_entries,
        }
    }

    /// Parameter types, in order.
    pub fn param_types(&self) -> &[Type] {
        &self.params
    }

    /// The SSA values of the function parameters, in order.
    pub fn param_values(&self) -> &[InstId] {
        &self.param_values
    }

    /// Number of blocks ever created (including none removed — blocks are
    /// never deallocated, only disconnected).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instruction slots ever created (including detached ones).
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently attached to a block.
    pub fn live_inst_count(&self) -> usize {
        self.insts.iter().filter(|d| d.block.is_some()).count()
    }

    /// Iterates over all block ids, in creation order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Iterates over the block ids reachable from the entry block, in an
    /// unspecified order.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        let mut out = Vec::new();
        seen[self.entry.index()] = true;
        while let Some(b) = stack.pop() {
            out.push(b);
            for s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        out
    }

    /// Creates a new, empty, unreachable block terminated by
    /// [`Terminator::Deopt`].
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(BlockData {
            insts: Vec::new(),
            term: Terminator::Deopt,
            preds: Vec::new(),
        });
        // Even an unreachable block is a CFG change: analyses size their
        // per-block tables by block_count.
        self.bump_cfg();
        id
    }

    /// The instruction payload of `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()].inst
    }

    /// Mutable access to the instruction payload of `id`.
    ///
    /// Callers must not change the number of φ inputs through this (use the
    /// edge API), nor change the produced type.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        self.touch_inst(id);
        self.bump_value();
        &mut self.insts[id.index()].inst
    }

    /// The result type of `id`.
    pub fn ty(&self, id: InstId) -> Type {
        self.insts[id.index()].ty
    }

    /// The block currently containing `id`, or `None` if detached.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.insts[id.index()].block
    }

    /// The instructions of `b` in execution order (φs first).
    pub fn block_insts(&self, b: BlockId) -> &[InstId] {
        &self.blocks[b.index()].insts
    }

    /// The φ instructions of `b` (the φ prefix of its instruction list).
    pub fn phis(&self, b: BlockId) -> &[InstId] {
        let insts = &self.blocks[b.index()].insts;
        let end = insts
            .iter()
            .position(|&i| !self.inst(i).is_phi())
            .unwrap_or(insts.len());
        &insts[..end]
    }

    /// The terminator of `b`.
    pub fn terminator(&self, b: BlockId) -> &Terminator {
        &self.blocks[b.index()].term
    }

    /// Successor blocks of `b`, in terminator order.
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.blocks[b.index()].term.successors()
    }

    /// Predecessor blocks of `b`. The order defines φ input positions.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.blocks[b.index()].preds
    }

    /// Index of `pred` within `b`'s predecessor list.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is not a predecessor of `b`.
    pub fn pred_index(&self, b: BlockId, pred: BlockId) -> usize {
        self.blocks[b.index()]
            .preds
            .iter()
            .position(|&p| p == pred)
            .unwrap_or_else(|| panic!("{pred} is not a predecessor of {b}"))
    }

    /// Returns `true` when `b` is a control-flow merge (≥ 2 predecessors).
    pub fn is_merge(&self, b: BlockId) -> bool {
        self.blocks[b.index()].preds.len() >= 2
    }

    /// All merge blocks of the graph, in id order.
    pub fn merge_blocks(&self) -> Vec<BlockId> {
        self.blocks().filter(|&b| self.is_merge(b)).collect()
    }

    /// Appends a non-φ instruction to the end of `b` (before the
    /// terminator) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is a φ (use [`Graph::append_phi`]).
    pub fn append_inst(&mut self, b: BlockId, inst: Inst, ty: Type) -> InstId {
        assert!(!inst.is_phi(), "use append_phi for phis");
        self.touch_block(b);
        let id = self.alloc_inst(inst, ty, b);
        self.blocks[b.index()].insts.push(id);
        id
    }

    /// Inserts a non-φ instruction at position `at` of `b`'s instruction
    /// list and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is a φ or `at` lies inside the φ prefix.
    pub fn insert_inst(&mut self, b: BlockId, at: usize, inst: Inst, ty: Type) -> InstId {
        assert!(!inst.is_phi(), "use append_phi for phis");
        assert!(at >= self.phis(b).len(), "cannot insert before phis");
        self.touch_block(b);
        let id = self.alloc_inst(inst, ty, b);
        self.blocks[b.index()].insts.insert(at, id);
        id
    }

    /// Appends a φ to `b`. `inputs` must have exactly one value per current
    /// predecessor of `b`, in predecessor order.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the predecessor count.
    pub fn append_phi(&mut self, b: BlockId, inputs: Vec<InstId>, ty: Type) -> InstId {
        assert_eq!(
            inputs.len(),
            self.blocks[b.index()].preds.len(),
            "phi input count must match predecessor count of {b}"
        );
        let at = self.phis(b).len();
        self.touch_block(b);
        let id = self.alloc_inst(Inst::Phi { inputs }, ty, b);
        self.blocks[b.index()].insts.insert(at, id);
        id
    }

    fn alloc_inst(&mut self, inst: Inst, ty: Type, b: BlockId) -> InstId {
        self.bump_value();
        let id = InstId::from_index(self.insts.len());
        self.insts.push(InstData {
            inst,
            ty,
            block: Some(b),
        });
        id
    }

    /// Detaches `id` from its block. The slot stays allocated; `id` must no
    /// longer be referenced by any remaining instruction or terminator
    /// (checked by the verifier, not here).
    pub fn remove_inst(&mut self, id: InstId) {
        self.touch_inst(id);
        if let Some(b) = self.insts[id.index()].block {
            self.touch_block(b);
        }
        self.bump_value();
        if let Some(b) = self.insts[id.index()].block.take() {
            let insts = &mut self.blocks[b.index()].insts;
            let pos = insts
                .iter()
                .position(|&i| i == id)
                .expect("inst missing from its block");
            insts.remove(pos);
        }
    }

    /// Replaces the terminator of `b`, updating predecessor lists of all
    /// old and new successors.
    ///
    /// # Panics
    ///
    /// Panics if a newly added successor already has φs (their inputs could
    /// not be inferred — use [`Graph::retarget_edge`] via a
    /// retarget instead), or if the new terminator lists the same successor
    /// twice.
    pub fn set_terminator(&mut self, b: BlockId, term: Terminator) {
        self.touch_block(b);
        self.bump_cfg();
        let new_succs = term.successors();
        if new_succs.len() == 2 {
            assert_ne!(
                new_succs[0], new_succs[1],
                "branch successors must be distinct"
            );
        }
        let old_succs = self.blocks[b.index()].term.successors();
        for s in old_succs {
            self.remove_pred(s, b);
        }
        for &s in &new_succs {
            assert!(
                self.phis(s).is_empty(),
                "cannot add an edge into {s}: it has phis; use connect_edge_with_phi_inputs"
            );
            self.touch_block(s);
            self.blocks[s.index()].preds.push(b);
        }
        self.blocks[b.index()].term = term;
    }

    /// Redirects the control-flow edge `from → old_to` to point at
    /// `new_to`, supplying `phi_inputs` (one per φ of `new_to`, in φ
    /// order) for the new edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist, if `phi_inputs` does not match
    /// `new_to`'s φ count, or if `from` already has an edge to `new_to`
    /// (duplicate edges are not representable).
    pub fn retarget_edge(
        &mut self,
        from: BlockId,
        old_to: BlockId,
        new_to: BlockId,
        phi_inputs: &[InstId],
    ) {
        self.touch_block(from);
        self.bump_cfg();
        assert!(
            self.succs(from).contains(&old_to),
            "no edge {from} -> {old_to}"
        );
        if old_to != new_to {
            assert!(
                !self.succs(from).contains(&new_to),
                "edge {from} -> {new_to} already exists"
            );
        }
        let mut done = false;
        self.blocks[from.index()].term.for_each_successor_mut(|s| {
            if !done && *s == old_to {
                *s = new_to;
                done = true;
            }
        });
        self.remove_pred(old_to, from);
        self.add_pred_with_phi_inputs(new_to, from, phi_inputs);
    }

    /// Installs a terminator on a block that currently has no successors,
    /// supplying φ inputs for every new edge: `phi_inputs[i]` provides one
    /// value per φ of the `i`-th successor of `term` (in φ order). Used by
    /// the duplication transform, whose copied block branches into blocks
    /// that already have φs.
    ///
    /// # Panics
    ///
    /// Panics if `b` currently has successors, if the successor count does
    /// not match `phi_inputs`, if a successor's φ count does not match its
    /// input list, or if `term` lists the same successor twice.
    pub fn install_terminator_with_phi_inputs(
        &mut self,
        b: BlockId,
        term: Terminator,
        phi_inputs: &[Vec<InstId>],
    ) {
        self.touch_block(b);
        self.bump_cfg();
        assert!(
            self.blocks[b.index()].term.successors().is_empty(),
            "{b} already has successors"
        );
        let succs = term.successors();
        assert_eq!(
            succs.len(),
            phi_inputs.len(),
            "one input list per successor"
        );
        if succs.len() == 2 {
            assert_ne!(succs[0], succs[1], "branch successors must be distinct");
        }
        for (s, inputs) in succs.iter().zip(phi_inputs) {
            self.add_pred_with_phi_inputs(*s, b, inputs);
        }
        self.blocks[b.index()].term = term;
    }

    /// Adds the edge `from → to` implied by `from`'s terminator already
    /// mentioning `to` is **not** supported; this helper is for building an
    /// edge into a block that has φs: it appends `from` to `to`'s
    /// predecessors and one input per φ. The caller is responsible for the
    /// terminator side (used by [`Graph::retarget_edge`] and the
    /// duplication transform).
    fn add_pred_with_phi_inputs(&mut self, to: BlockId, from: BlockId, phi_inputs: &[InstId]) {
        let phis: Vec<InstId> = self.phis(to).to_vec();
        assert_eq!(
            phis.len(),
            phi_inputs.len(),
            "need exactly one phi input per phi of {to}"
        );
        self.touch_block(to);
        self.blocks[to.index()].preds.push(from);
        for (phi, &input) in phis.iter().zip(phi_inputs) {
            self.touch_inst(*phi);
            match &mut self.insts[phi.index()].inst {
                Inst::Phi { inputs } => inputs.push(input),
                _ => unreachable!("phi prefix returned a non-phi"),
            }
        }
    }

    /// Removes `from` from `to`'s predecessor list, dropping the φ input at
    /// the corresponding position of each φ of `to`.
    fn remove_pred(&mut self, to: BlockId, from: BlockId) {
        let idx = self.pred_index(to, from);
        self.touch_block(to);
        self.blocks[to.index()].preds.remove(idx);
        let phis: Vec<InstId> = self.phis(to).to_vec();
        for phi in phis {
            self.touch_inst(phi);
            match &mut self.insts[phi.index()].inst {
                Inst::Phi { inputs } => {
                    inputs.remove(idx);
                }
                _ => unreachable!("phi prefix returned a non-phi"),
            }
        }
    }

    /// Folds the branch terminating `b` into an unconditional jump to the
    /// successor chosen by `take_then`, removing the edge to the other
    /// successor (and its φ inputs there).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not terminated by a branch.
    pub fn fold_branch(&mut self, b: BlockId, take_then: bool) {
        self.touch_block(b);
        self.bump_cfg();
        let (then_bb, else_bb) = match self.blocks[b.index()].term {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => (then_bb, else_bb),
            _ => panic!("{b} is not terminated by a branch"),
        };
        let (taken, dropped) = if take_then {
            (then_bb, else_bb)
        } else {
            (else_bb, then_bb)
        };
        self.remove_pred(dropped, b);
        self.blocks[b.index()].term = Terminator::Jump { target: taken };
    }

    /// Applies `f` to every value operand of `b`'s terminator, leaving its
    /// successors untouched. Used by the parser to patch forward
    /// references and by optimizations to rewrite branch conditions.
    pub fn patch_terminator_inputs(&mut self, b: BlockId, f: impl FnMut(&mut InstId)) {
        self.touch_block(b);
        self.bump_value();
        self.blocks[b.index()].term.for_each_input_mut(f);
    }

    /// Sets the probability of the branch terminating `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not terminated by a branch.
    pub fn set_branch_probability(&mut self, b: BlockId, prob: f64) {
        // Probabilities feed BlockFrequencies, a CFG-level analysis, so this
        // counts as a CFG change even though no edge moves.
        self.touch_block(b);
        self.bump_cfg();
        match &mut self.blocks[b.index()].term {
            Terminator::Branch { prob_then, .. } => *prob_then = prob,
            _ => panic!("{b} is not terminated by a branch"),
        }
    }

    /// Rewrites every use of `old` (in instructions and terminators of all
    /// blocks) to `new`.
    pub fn replace_all_uses(&mut self, old: InstId, new: InstId) {
        assert_ne!(old, new, "cannot replace a value with itself");
        self.bump_value();
        for idx in 0..self.insts.len() {
            if self.insts[idx].block.is_none() {
                continue;
            }
            let mut uses_old = false;
            self.insts[idx].inst.for_each_input(|i| {
                if i == old {
                    uses_old = true;
                }
            });
            if !uses_old {
                continue;
            }
            self.touch_inst(InstId::from_index(idx));
            self.insts[idx].inst.for_each_input_mut(|i| {
                if *i == old {
                    *i = new;
                }
            });
        }
        for idx in 0..self.blocks.len() {
            let mut uses_old = false;
            self.blocks[idx].term.for_each_input(|i| {
                if i == old {
                    uses_old = true;
                }
            });
            if !uses_old {
                continue;
            }
            self.touch_block(BlockId::from_index(idx));
            self.blocks[idx].term.for_each_input_mut(|i| {
                if *i == old {
                    *i = new;
                }
            });
        }
    }

    /// Counts how many operands across the graph reference `id`.
    pub fn use_count(&self, id: InstId) -> usize {
        let mut n = 0;
        for data in &self.insts {
            if data.block.is_some() {
                data.inst.for_each_input(|i| {
                    if i == id {
                        n += 1;
                    }
                });
            }
        }
        for block in &self.blocks {
            block.term.for_each_input(|i| {
                if i == id {
                    n += 1;
                }
            });
        }
        n
    }

    /// Returns `true` if any live instruction or terminator uses `id`.
    pub fn has_uses(&self, id: InstId) -> bool {
        self.use_count(id) > 0
    }

    /// Moves every non-φ instruction of `from` (in order) to the end of
    /// `to`, and transfers `from`'s terminator to `to`. Used when a block
    /// degenerates to a single predecessor and gets merged into it.
    ///
    /// The caller must first have eliminated `from`'s φs and must ensure
    /// `to`'s unique successor is `from`.
    pub fn merge_block_into_pred(&mut self, from: BlockId, to: BlockId) {
        self.touch_block(from);
        self.touch_block(to);
        self.bump_cfg();
        assert_eq!(
            self.succs(to),
            vec![from],
            "{to} must jump straight to {from}"
        );
        assert_eq!(
            self.preds(from),
            &[to],
            "{from} must have {to} as sole predecessor"
        );
        assert!(self.phis(from).is_empty(), "{from} still has phis");
        let moved: Vec<InstId> = std::mem::take(&mut self.blocks[from.index()].insts);
        for &i in &moved {
            self.touch_inst(i);
            self.insts[i.index()].block = Some(to);
        }
        self.blocks[to.index()].insts.extend(moved);
        // Transfer the terminator: reuse the edge bookkeeping by first
        // clearing `from`'s terminator, then installing it on `to`.
        let term = std::mem::replace(&mut self.blocks[from.index()].term, Terminator::Deopt);
        for s in term.successors() {
            // Rewrite pred entries of successors from `from` to `to`.
            let idx = self.pred_index(s, from);
            self.touch_block(s);
            self.blocks[s.index()].preds[idx] = to;
        }
        // `to`'s old terminator was Jump{from}; drop its pred entry.
        self.remove_pred(from, to);
        self.blocks[to.index()].term = term;
    }

    /// Takes a checkpoint of the whole graph.
    ///
    /// The snapshot keeps the current version stamps (see
    /// [`Graph::version`]): because stamps are globally unique and never
    /// reused, restoring the snapshot later makes any analysis-cache entry
    /// keyed on the snapshot's stamp valid again, and entries computed for
    /// states diverged in between can never be mistaken for it.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            graph: self.clone(),
        }
    }
}

/// An owned checkpoint of a [`Graph`], taken with [`Graph::snapshot`].
///
/// Used by the phase driver's bailout-and-recovery path (and the
/// backtracking baseline) to roll a graph back to the last verified state
/// after a failed or rejected transformation.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    graph: Graph,
}

impl GraphSnapshot {
    /// Number of attached instructions held by the snapshot — the cost
    /// driver of checkpointing (§3.1 prices backtracking by exactly this
    /// copy volume).
    pub fn live_inst_count(&self) -> usize {
        self.graph.live_inst_count()
    }

    /// Restores the snapshot into `g`, consuming it.
    pub fn restore(self, g: &mut Graph) {
        *g = self.graph;
    }

    /// Restores the snapshot into `g`, keeping it available for further
    /// rollbacks to the same state.
    pub fn restore_cloned(&self, g: &mut Graph) {
        *g = self.graph.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, CmpOp};
    use crate::types::ConstValue;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    /// Builds the diamond from Figure 1 of the paper:
    /// `if (x > 0) phi = x else phi = 0; return 2 + phi`.
    fn figure1() -> (Graph, BlockId, BlockId, BlockId, InstId) {
        let mut g = Graph::new("foo", &[Type::Int], empty_table());
        let entry = g.entry();
        let x = g.param_values()[0];
        let zero = g.append_inst(entry, Inst::Const(ConstValue::Int(0)), Type::Int);
        let cond = g.append_inst(
            entry,
            Inst::Compare {
                op: CmpOp::Gt,
                lhs: x,
                rhs: zero,
            },
            Type::Bool,
        );
        let bt = g.add_block();
        let bf = g.add_block();
        let bm = g.add_block();
        g.set_terminator(
            entry,
            Terminator::Branch {
                cond,
                then_bb: bt,
                else_bb: bf,
                prob_then: 0.5,
            },
        );
        g.set_terminator(bt, Terminator::Jump { target: bm });
        g.set_terminator(bf, Terminator::Jump { target: bm });
        let phi = g.append_phi(bm, vec![x, zero], Type::Int);
        let two = g.append_inst(bm, Inst::Const(ConstValue::Int(2)), Type::Int);
        let sum = g.append_inst(
            bm,
            Inst::Binary {
                op: BinOp::Add,
                lhs: two,
                rhs: phi,
            },
            Type::Int,
        );
        g.set_terminator(bm, Terminator::Return { value: Some(sum) });
        (g, bt, bf, bm, phi)
    }

    #[test]
    fn builds_diamond_with_consistent_edges() {
        let (g, bt, bf, bm, phi) = figure1();
        assert_eq!(g.preds(bm), &[bt, bf]);
        assert_eq!(g.succs(g.entry()), vec![bt, bf]);
        assert!(g.is_merge(bm));
        assert_eq!(g.merge_blocks(), vec![bm]);
        assert_eq!(g.phis(bm), &[phi]);
        match g.inst(phi) {
            Inst::Phi { inputs } => assert_eq!(inputs.len(), 2),
            _ => panic!("expected phi"),
        }
    }

    #[test]
    fn params_are_created_in_entry() {
        let g = Graph::new("p", &[Type::Int, Type::Bool], empty_table());
        assert_eq!(g.param_values().len(), 2);
        assert_eq!(g.ty(g.param_values()[0]), Type::Int);
        assert_eq!(g.ty(g.param_values()[1]), Type::Bool);
        assert_eq!(g.block_of(g.param_values()[0]), Some(g.entry()));
    }

    #[test]
    fn fold_branch_drops_phi_input() {
        // entry branches to bt or directly to the merge bm; bt jumps to bm.
        let mut g = Graph::new("fold", &[Type::Int], empty_table());
        let entry = g.entry();
        let x = g.param_values()[0];
        let zero = g.append_inst(entry, Inst::Const(ConstValue::Int(0)), Type::Int);
        let cond = g.append_inst(
            entry,
            Inst::Compare {
                op: CmpOp::Gt,
                lhs: x,
                rhs: zero,
            },
            Type::Bool,
        );
        let bt = g.add_block();
        let bm = g.add_block();
        g.set_terminator(
            entry,
            Terminator::Branch {
                cond,
                then_bb: bt,
                else_bb: bm,
                prob_then: 0.5,
            },
        );
        g.set_terminator(bt, Terminator::Jump { target: bm });
        let phi = g.append_phi(bm, vec![zero, x], Type::Int);
        g.set_terminator(bm, Terminator::Return { value: Some(phi) });
        assert_eq!(g.preds(bm), &[entry, bt]);

        // Fold the branch towards bt: the entry→bm edge disappears and the
        // phi loses the corresponding input.
        g.fold_branch(entry, true);
        assert_eq!(g.succs(entry), vec![bt]);
        assert_eq!(g.preds(bm), &[bt]);
        match g.inst(phi) {
            Inst::Phi { inputs } => assert_eq!(inputs, &vec![x]),
            _ => panic!("expected phi"),
        }
    }

    #[test]
    fn retarget_edge_moves_phi_inputs() {
        let (mut g, bt, bf, bm, phi) = figure1();
        // Create a copy-destination block b' and retarget bt -> b'.
        let bcopy = g.add_block();
        g.set_terminator(bcopy, Terminator::Return { value: None });
        let x = g.param_values()[0];
        let before_inputs = match g.inst(phi) {
            Inst::Phi { inputs } => inputs.clone(),
            _ => unreachable!(),
        };
        assert_eq!(before_inputs[0], x);
        g.retarget_edge(bt, bm, bcopy, &[]);
        assert_eq!(g.succs(bt), vec![bcopy]);
        assert_eq!(g.preds(bm), &[bf]);
        assert_eq!(g.preds(bcopy), &[bt]);
        match g.inst(phi) {
            Inst::Phi { inputs } => {
                assert_eq!(inputs.len(), 1);
                assert_ne!(inputs[0], x);
            }
            _ => panic!("expected phi"),
        }
    }

    #[test]
    fn replace_all_uses_rewrites_operands_and_terminators() {
        let (mut g, _bt, _bf, bm, phi) = figure1();
        let entry = g.entry();
        let hundred = g.append_inst(entry, Inst::Const(ConstValue::Int(100)), Type::Int);
        assert!(g.has_uses(phi));
        g.replace_all_uses(phi, hundred);
        assert!(!g.has_uses(phi));
        // The add in bm now uses `hundred`.
        let add = *g.block_insts(bm).last().unwrap();
        let inputs = g.inst(add).collect_inputs();
        assert!(inputs.contains(&hundred));
    }

    #[test]
    fn remove_inst_detaches() {
        let (mut g, _bt, _bf, bm, phi) = figure1();
        let hundred = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(100)), Type::Int);
        g.replace_all_uses(phi, hundred);
        let live_before = g.live_inst_count();
        g.remove_inst(phi);
        assert_eq!(g.block_of(phi), None);
        assert_eq!(g.live_inst_count(), live_before - 1);
        assert!(g.phis(bm).is_empty());
    }

    #[test]
    fn use_count_counts_multiplicity() {
        let mut g = Graph::new("m", &[Type::Int], empty_table());
        let x = g.param_values()[0];
        let sq = g.append_inst(
            g.entry(),
            Inst::Binary {
                op: BinOp::Mul,
                lhs: x,
                rhs: x,
            },
            Type::Int,
        );
        g.set_terminator(g.entry(), Terminator::Return { value: Some(sq) });
        assert_eq!(g.use_count(x), 2);
        assert_eq!(g.use_count(sq), 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicate_branch_successors() {
        let mut g = Graph::new("d", &[Type::Bool], empty_table());
        let c = g.param_values()[0];
        let b1 = g.add_block();
        g.set_terminator(
            g.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b1,
                prob_then: 0.5,
            },
        );
    }

    #[test]
    #[should_panic(expected = "has phis")]
    fn set_terminator_rejects_new_edges_into_phi_blocks() {
        let (mut g, _bt, _bf, bm, _phi) = figure1();
        let nb = g.add_block();
        g.set_terminator(nb, Terminator::Jump { target: bm });
    }

    #[test]
    fn merge_block_into_pred_moves_instructions() {
        let mut g = Graph::new("mb", &[Type::Int], empty_table());
        let entry = g.entry();
        let b1 = g.add_block();
        g.set_terminator(entry, Terminator::Jump { target: b1 });
        let x = g.param_values()[0];
        let one = g.append_inst(b1, Inst::Const(ConstValue::Int(1)), Type::Int);
        let add = g.append_inst(
            b1,
            Inst::Binary {
                op: BinOp::Add,
                lhs: x,
                rhs: one,
            },
            Type::Int,
        );
        g.set_terminator(b1, Terminator::Return { value: Some(add) });
        g.merge_block_into_pred(b1, entry);
        assert_eq!(g.block_of(add), Some(entry));
        assert!(matches!(
            g.terminator(entry),
            Terminator::Return { value: Some(v) } if *v == add
        ));
        assert!(g.block_insts(b1).is_empty());
    }

    #[test]
    fn patch_terminator_inputs_rewrites_cond() {
        let mut g = Graph::new("p", &[Type::Bool, Type::Bool], empty_table());
        let c1 = g.param_values()[0];
        let c2 = g.param_values()[1];
        let (b1, b2) = (g.add_block(), g.add_block());
        g.set_terminator(
            g.entry(),
            Terminator::Branch {
                cond: c1,
                then_bb: b1,
                else_bb: b2,
                prob_then: 0.5,
            },
        );
        g.patch_terminator_inputs(g.entry(), |i| *i = c2);
        assert!(matches!(
            g.terminator(g.entry()),
            Terminator::Branch { cond, .. } if *cond == c2
        ));
        // Successors and pred bookkeeping untouched.
        assert_eq!(g.preds(b1), &[g.entry()]);
    }

    #[test]
    fn set_branch_probability_updates_profile() {
        let mut g = Graph::new("bp", &[Type::Bool], empty_table());
        let c = g.param_values()[0];
        let (b1, b2) = (g.add_block(), g.add_block());
        g.set_terminator(
            g.entry(),
            Terminator::Branch {
                cond: c,
                then_bb: b1,
                else_bb: b2,
                prob_then: 0.5,
            },
        );
        g.set_branch_probability(g.entry(), 0.25);
        assert!(matches!(
            g.terminator(g.entry()),
            Terminator::Branch { prob_then, .. } if *prob_then == 0.25
        ));
    }

    #[test]
    fn install_terminator_with_phi_inputs_extends_phis() {
        // A merge with a phi gains a third predecessor through the
        // install API (the duplication transform's path).
        let (mut g, _bt, _bf, bm, phi) = figure1();
        let extra = g.add_block();
        let hundred = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(100)), Type::Int);
        g.install_terminator_with_phi_inputs(
            extra,
            Terminator::Jump { target: bm },
            &[vec![hundred]],
        );
        assert_eq!(g.preds(bm).len(), 3);
        match g.inst(phi) {
            Inst::Phi { inputs } => {
                assert_eq!(inputs.len(), 3);
                assert_eq!(inputs[2], hundred);
            }
            _ => panic!("expected phi"),
        }
    }

    #[test]
    #[should_panic(expected = "already has successors")]
    fn install_terminator_rejects_terminated_blocks() {
        let (mut g, bt, _bf, bm, _) = figure1();
        g.install_terminator_with_phi_inputs(bt, Terminator::Jump { target: bm }, &[vec![]]);
    }

    #[test]
    fn versions_track_mutation_levels() {
        let (mut g, _bt, _bf, _bm, phi) = figure1();
        let (cfg0, val0) = (g.cfg_version(), g.version());
        // Pure value rewrites move the value epoch but not the CFG epoch.
        let hundred = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(100)), Type::Int);
        assert_eq!(g.cfg_version(), cfg0);
        assert_ne!(g.version(), val0);
        g.replace_all_uses(phi, hundred);
        assert_eq!(g.cfg_version(), cfg0);
        // Structural mutations move both, to the same fresh stamp.
        let v1 = g.version();
        g.add_block();
        assert_ne!(g.cfg_version(), cfg0);
        assert_ne!(g.version(), v1);
        assert_eq!(g.cfg_version(), g.version());
    }

    #[test]
    fn clone_shares_stamp_until_it_diverges() {
        let (g, ..) = figure1();
        let mut c = g.clone();
        assert_eq!(c.version(), g.version());
        assert_eq!(c.cfg_version(), g.cfg_version());
        c.add_block();
        assert_ne!(c.cfg_version(), g.cfg_version());
    }

    #[test]
    fn reachable_blocks_ignores_disconnected() {
        let (mut g, bt, bf, bm, _) = figure1();
        let orphan = g.add_block();
        let reach = g.reachable_blocks();
        assert!(reach.contains(&bt) && reach.contains(&bf) && reach.contains(&bm));
        assert!(!reach.contains(&orphan));
    }

    /// Debug digest of everything rollback promises to restore.
    fn digest(g: &Graph) -> String {
        format!(
            "{:?}|{:?}|{}|{}",
            g.insts, g.blocks, g.cfg_version, g.value_version
        )
    }

    #[test]
    fn txn_rollback_restores_graph_and_stamps() {
        let (mut g, _bt, _bf, bm, phi) = figure1();
        let before = digest(&g);
        let (cfg0, val0) = (g.cfg_version(), g.version());

        g.begin_txn();
        assert_eq!(g.txn_depth(), 1);
        // A representative mix: allocate, mutate an old slot, rewire edges.
        let c = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(7)), Type::Int);
        g.replace_all_uses(phi, c);
        g.fold_branch(g.entry(), true);
        let orphan = g.add_block();
        g.set_terminator(orphan, Terminator::Return { value: None });
        let last = *g.block_insts(bm).last().expect("bm has instructions");
        g.remove_inst(last);
        assert_ne!(digest(&g), before);

        let restored = g.rollback_txn();
        assert!(restored > 0);
        assert_eq!(g.txn_depth(), 0);
        assert_eq!(digest(&g), before);
        assert_eq!(g.cfg_version(), cfg0);
        assert_eq!(g.version(), val0);
    }

    #[test]
    fn txn_commit_keeps_mutations_and_is_transparent_to_outer_frames() {
        let (mut g, _bt, _bf, _bm, phi) = figure1();
        let before = digest(&g);

        g.begin_txn(); // outer
        let c = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(9)), Type::Int);
        g.begin_txn(); // inner
        g.replace_all_uses(phi, c);
        g.commit_txn(); // inner mutations survive...
        assert_eq!(g.txn_depth(), 1);
        g.rollback_txn(); // ...until the outer frame rolls back past them.
        assert_eq!(digest(&g), before);
    }

    #[test]
    fn nested_rollback_unwinds_one_frame_at_a_time() {
        let (mut g, _bt, _bf, _bm, phi) = figure1();
        let outer_state = digest(&g);

        g.begin_txn();
        let c = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(3)), Type::Int);
        let mid_state = digest(&g);

        g.begin_txn();
        g.replace_all_uses(phi, c);
        g.fold_branch(g.entry(), false);
        assert_ne!(digest(&g), mid_state);
        g.rollback_txn();
        assert_eq!(digest(&g), mid_state);

        g.rollback_txn();
        assert_eq!(digest(&g), outer_state);
    }

    #[test]
    fn undo_counters_track_edits_rollbacks_and_peak() {
        let (mut g, ..) = figure1();
        assert_eq!(g.undo_stats(), UndoStats::default());

        // Mutations outside a transaction are not counted as edits.
        g.add_block();
        assert_eq!(g.undo_stats().edits, 0);

        g.begin_txn();
        g.add_block();
        let c = g.append_inst(g.entry(), Inst::Const(ConstValue::Int(1)), Type::Int);
        let stats = g.undo_stats();
        assert_eq!(stats.edits, 2);
        // append_inst touched the (pre-txn) entry block slot.
        assert!(stats.peak_entries >= 1);
        g.rollback_txn();
        assert_eq!(g.undo_stats().rollbacks, 1);
        // The rolled-back const slot is gone from the arena entirely.
        assert!(c.index() >= g.insts.len());
    }

    #[test]
    fn clone_resets_undo_log() {
        let (mut g, ..) = figure1();
        g.begin_txn();
        g.add_block();
        let c = g.clone();
        assert_eq!(c.txn_depth(), 0);
        assert_eq!(c.undo_stats(), UndoStats::default());
        assert_eq!(g.txn_depth(), 1);
        g.rollback_txn();
    }

    #[test]
    fn rollback_matches_snapshot_restore() {
        let (mut g, _bt, _bf, bm, phi) = figure1();
        let snap = g.snapshot();

        g.begin_txn();
        let c = g.append_inst(bm, Inst::Const(ConstValue::Int(11)), Type::Int);
        g.replace_all_uses(phi, c);
        g.fold_branch(g.entry(), true);
        g.rollback_txn();

        let mut restored = g.clone();
        snap.restore(&mut restored);
        assert_eq!(digest(&g), digest(&restored));
    }

    #[test]
    #[should_panic(expected = "rollback_txn without an open transaction")]
    fn rollback_without_txn_panics() {
        let (mut g, ..) = figure1();
        g.rollback_txn();
    }
}
