//! Property tests for the undo log: for random mutation sequences over a
//! well-formed seed graph, `rollback_txn` must restore *exactly* the
//! state a [`GraphSnapshot`] taken at `begin_txn` would restore — same
//! printed graph, same predecessor lists, same version stamps, and the
//! same lint report. Nested transactions must unwind one mark at a time,
//! and a committed inner transaction must stay transparent to an outer
//! rollback.
//!
//! The mutation menu deliberately includes edits that leave the graph
//! unhygienic (dangling φ inputs, unreachable blocks): rollback has to be
//! byte-identical on *any* intermediate state, not just clean ones.

use dbds_ir::{
    lint, print_graph, BlockId, ClassTable, CmpOp, ConstValue, Graph, GraphBuilder, Inst, InstId,
    Terminator, Type,
};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

/// The well-formed diamond all mutation sequences start from.
fn diamond() -> Graph {
    let mut b = GraphBuilder::new("d", &[Type::Int], Arc::new(ClassTable::new()));
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![x, zero], Type::Int);
    b.ret(Some(phi));
    b.finish()
}

/// A total textual fingerprint of the graph built from public API only:
/// the printed body, every block's predecessor list and terminator, the
/// instruction arena contents by id, and both version stamps. Two equal
/// digests mean the observable graph states are identical.
fn digest(g: &Graph) -> String {
    let mut out = print_graph(g);
    for b in g.blocks() {
        let _ = writeln!(
            out,
            "{b:?}: preds={:?} term={:?}",
            g.preds(b),
            g.terminator(b)
        );
        for &i in g.block_insts(b) {
            let _ = writeln!(
                out,
                "  {i:?}: {:?} : {:?} @ {:?}",
                g.inst(i),
                g.ty(i),
                g.block_of(i)
            );
        }
    }
    let _ = writeln!(
        out,
        "live={} cfg_v={} value_v={}",
        g.live_inst_count(),
        g.cfg_version(),
        g.version()
    );
    out
}

/// One encoded mutation. `created` tracks constants this sequence
/// appended so removals and use-rewrites target live, sequence-owned
/// instructions.
fn apply(g: &mut Graph, created: &mut Vec<InstId>, kind: u8, bsel: u8, csel: u8, val: i64) {
    let blocks: Vec<BlockId> = g.blocks().collect();
    let b = blocks[bsel as usize % blocks.len()];
    match kind % 6 {
        0 => {
            g.add_block();
        }
        1 => {
            created.push(g.append_inst(b, Inst::Const(ConstValue::Int(val)), Type::Int));
        }
        2 => {
            if let Some(i) = created.pop() {
                if g.block_of(i).is_some() {
                    g.remove_inst(i);
                }
            }
        }
        3 => {
            if created.len() >= 2 {
                let old = created[csel as usize % created.len()];
                let new = created[(csel as usize + 1) % created.len()];
                if old != new && g.block_of(old).is_some() && g.block_of(new).is_some() {
                    g.replace_all_uses(old, new);
                }
            }
        }
        4 => {
            if matches!(g.terminator(b), Terminator::Branch { .. }) {
                g.set_branch_probability(b, f64::from(csel % 10) / 10.0);
            }
        }
        _ => {
            // `set_terminator` refuses edges into φ-bearing blocks, so
            // the retarget op only aims at φ-free candidates.
            let candidates: Vec<BlockId> = blocks
                .iter()
                .copied()
                .filter(|&t| g.phis(t).is_empty())
                .collect();
            if !candidates.is_empty() {
                let target = candidates[(bsel as usize + 1 + csel as usize) % candidates.len()];
                g.set_terminator(b, Terminator::Jump { target });
            }
        }
    }
}

/// Strategy: a sequence of up to 24 encoded mutations.
fn ops() -> impl Strategy<Value = Vec<(u8, u8, u8, i64)>> {
    collection::vec((0u8..6, 0u8..16, 0u8..16, -100i64..100), 1..24)
}

proptest! {
    /// `rollback_txn` is byte-identical to restoring a `GraphSnapshot`
    /// taken at `begin_txn`: printed graph, arena contents, version
    /// stamps and the lint report all agree.
    #[test]
    fn rollback_matches_snapshot_restore(seq in ops()) {
        let mut g = diamond();
        let snap = g.snapshot();
        let lint_before = lint(&g).to_string();

        g.begin_txn();
        let mut created = Vec::new();
        for &(k, b, c, v) in &seq {
            apply(&mut g, &mut created, k, b, c, v);
        }
        g.rollback_txn();

        let rolled = digest(&g);
        let lint_rolled = lint(&g).to_string();
        let mut restored = diamond();
        snap.restore(&mut restored);
        prop_assert_eq!(&rolled, &digest(&restored));
        prop_assert_eq!(&lint_rolled, &lint_before);
        prop_assert_eq!(g.txn_depth(), 0);
    }

    /// Nested transactions unwind one mark at a time: the inner rollback
    /// lands on the mid-sequence state, the outer on the base state.
    #[test]
    fn nested_rollbacks_unwind_to_each_mark(seq in ops(), split in 0usize..64) {
        let mut g = diamond();
        let base = digest(&g);
        let cut = split % (seq.len() + 1);

        let mut created = Vec::new();
        g.begin_txn();
        for &(k, b, c, v) in &seq[..cut] {
            apply(&mut g, &mut created, k, b, c, v);
        }
        let mid = digest(&g);

        g.begin_txn();
        for &(k, b, c, v) in &seq[cut..] {
            apply(&mut g, &mut created, k, b, c, v);
        }
        g.rollback_txn();
        prop_assert_eq!(&digest(&g), &mid);

        g.rollback_txn();
        prop_assert_eq!(&digest(&g), &base);
        prop_assert_eq!(g.txn_depth(), 0);
    }

    /// A committed inner transaction is transparent to the outer frame:
    /// rolling the outer back still restores the pre-outer state.
    #[test]
    fn inner_commit_is_transparent_to_outer_rollback(seq in ops(), split in 0usize..64) {
        let mut g = diamond();
        let base = digest(&g);
        let cut = split % (seq.len() + 1);

        let mut created = Vec::new();
        g.begin_txn();
        for &(k, b, c, v) in &seq[..cut] {
            apply(&mut g, &mut created, k, b, c, v);
        }
        g.begin_txn();
        for &(k, b, c, v) in &seq[cut..] {
            apply(&mut g, &mut created, k, b, c, v);
        }
        g.commit_txn();
        g.rollback_txn();

        prop_assert_eq!(&digest(&g), &base);
        prop_assert_eq!(g.txn_depth(), 0);
    }
}
