//! Fail-first corpus for the lint framework: every graph-level
//! [`LintId`] is triggered by a purpose-built malformed (or merely
//! unhygienic) graph, proving each pass actually fires on the defect it
//! is named for. The non-graph lints have fail-first coverage next to
//! their implementations: `StaleAnalysis` in `dbds-analysis`'s cache
//! audit tests, `NonFiniteBenefit`/`NegativeAccruedSize` in
//! `dbds-core`'s `lint_simulation` tests, `Misprediction` in
//! `dbds-core`'s prediction-audit tests, and `FrontierViolation` in
//! `dbds-core`'s post-duplication frontier-check tests.

use dbds_ir::{
    lint, BinOp, ClassTable, CmpOp, ConstValue, Graph, GraphBuilder, Inst, InstId, LintId,
    LintReport, Severity, Terminator, Type,
};
use std::sync::Arc;

fn empty_table() -> Arc<ClassTable> {
    Arc::new(ClassTable::new())
}

/// The well-formed diamond every broken variant starts from.
fn diamond() -> Graph {
    let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![x, zero], Type::Int);
    b.ret(Some(phi));
    b.finish()
}

/// Asserts the defect shows up under exactly the expected lint, with the
/// severity the lint declares.
fn expect_lint(report: &LintReport, lint: LintId) {
    assert!(
        report.count_of(lint) > 0,
        "expected {} to fire, got:\n{report}",
        lint.name()
    );
    for d in report.diagnostics() {
        assert_eq!(d.severity, d.lint.severity(), "{report}");
    }
}

#[test]
fn clean_diamond_is_clean() {
    let report = lint(&diamond());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn graph_consistency_fires_on_entry_with_predecessors() {
    let mut g = diamond();
    // Retarget bt's jump to the entry block: entry gains a predecessor.
    let bt = g.blocks().nth(1).expect("bt exists");
    g.set_terminator(bt, Terminator::Jump { target: g.entry() });
    expect_lint(&lint(&g), LintId::GraphConsistency);
}

#[test]
fn branch_probability_fires_outside_unit_interval() {
    for bad in [2.0, -0.5, f64::NAN] {
        let mut g = diamond();
        g.set_branch_probability(g.entry(), bad);
        expect_lint(&lint(&g), LintId::BranchProbability);
    }
}

#[test]
fn phi_placement_fires_on_arity_mismatch() {
    let mut g = diamond();
    let bm = g.blocks().nth(3).expect("bm exists");
    let phi = g.phis(bm)[0];
    // Drop one input behind the builder's back: one input left, two
    // predecessors.
    if let Inst::Phi { inputs } = g.inst_mut(phi) {
        inputs.pop();
    }
    expect_lint(&lint(&g), LintId::PhiPlacement);
}

#[test]
fn param_placement_fires_outside_entry() {
    let mut g = diamond();
    let bt = g.blocks().nth(1).expect("bt exists");
    g.append_inst(bt, Inst::Param(0), Type::Int);
    expect_lint(&lint(&g), LintId::ParamPlacement);
}

#[test]
fn dangling_use_fires_on_out_of_range_operand() {
    let mut g = diamond();
    let e = g.entry();
    g.append_inst(
        e,
        Inst::Binary {
            op: BinOp::Add,
            lhs: g.param_values()[0],
            rhs: InstId(999),
        },
        Type::Int,
    );
    expect_lint(&lint(&g), LintId::DanglingUse);
}

#[test]
fn type_error_fires_on_boolean_arithmetic() {
    let mut g = Graph::new("t", &[Type::Bool], empty_table());
    let e = g.entry();
    let p = g.param_values()[0];
    let bad = g.append_inst(
        e,
        Inst::Binary {
            op: BinOp::Add,
            lhs: p,
            rhs: p,
        },
        Type::Int,
    );
    g.set_terminator(e, Terminator::Return { value: Some(bad) });
    expect_lint(&lint(&g), LintId::TypeError);
}

#[test]
fn ssa_dominance_fires_on_use_before_def() {
    let mut g = Graph::new("u", &[], empty_table());
    let e = g.entry();
    let c1 = g.append_inst(e, Inst::Const(ConstValue::Int(1)), Type::Int);
    // rhs references the constant appended below.
    let add = g.append_inst(
        e,
        Inst::Binary {
            op: BinOp::Add,
            lhs: c1,
            rhs: InstId(2),
        },
        Type::Int,
    );
    let _c2 = g.append_inst(e, Inst::Const(ConstValue::Int(2)), Type::Int);
    g.set_terminator(e, Terminator::Return { value: Some(add) });
    expect_lint(&lint(&g), LintId::SsaDominance);
}

#[test]
fn unreachable_block_fires_on_orphan_with_instructions() {
    let mut g = diamond();
    let orphan = g.add_block();
    let c = g.append_inst(orphan, Inst::Const(ConstValue::Int(7)), Type::Int);
    g.set_terminator(orphan, Terminator::Return { value: Some(c) });
    let report = lint(&g);
    expect_lint(&report, LintId::UnreachableBlock);
    // Hygiene only: the graph still verifies.
    assert_eq!(report.error_count(), 0, "{report}");
}

#[test]
fn trivial_phi_fires_when_every_input_agrees() {
    let mut b = GraphBuilder::new("tp", &[Type::Int], empty_table());
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![x, x], Type::Int); // both edges deliver x
    b.ret(Some(phi));
    let report = lint(&b.finish());
    expect_lint(&report, LintId::TrivialPhi);
    assert_eq!(report.error_count(), 0, "{report}");
}

#[test]
fn critical_edge_fires_on_branch_into_merge() {
    // entry branches to bt and directly to bm; bt falls through to bm,
    // so the entry→bm edge leaves a multi-successor block and enters a
    // multi-predecessor block: a critical edge.
    let mut b = GraphBuilder::new("ce", &[Type::Int], empty_table());
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bm) = (b.new_block(), b.new_block());
    b.branch(c, bt, bm, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![zero, x], Type::Int);
    b.ret(Some(phi));
    let report = lint(&b.finish());
    expect_lint(&report, LintId::CriticalEdge);
    assert_eq!(report.error_count(), 0, "{report}");
}

#[test]
fn no_exit_path_fires_on_an_infinite_region() {
    // entry → {spin, done}; spin never reaches a return.
    let mut b = GraphBuilder::new("inf", &[Type::Bool], empty_table());
    let c = b.param(0);
    let spin = b.new_block();
    let done = b.new_block();
    b.branch(c, spin, done, 0.5);
    b.switch_to(spin);
    b.jump(spin);
    b.switch_to(done);
    b.ret(None);
    let report = lint(&b.finish());
    expect_lint(&report, LintId::NoExitPath);
    assert_eq!(report.error_count(), 0, "{report}");
}

#[test]
fn control_dep_violation_fires_on_never_taken_dependent_code() {
    // bt holds an instruction but is control dependent on an edge whose
    // probability is exactly 0: the profile and the control-dependence
    // structure contradict each other.
    let mut b = GraphBuilder::new("cd", &[Type::Int], empty_table());
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c, bt, bf, 0.0);
    b.switch_to(bt);
    let y = b.add(x, x);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![y, zero], Type::Int);
    b.ret(Some(phi));
    expect_lint(&lint(&b.finish()), LintId::ControlDepViolation);
}

#[test]
fn hygiene_lints_are_warnings_and_do_not_fail_verify() {
    for warn_only in [
        LintId::UnreachableBlock,
        LintId::TrivialPhi,
        LintId::CriticalEdge,
        LintId::Misprediction,
        LintId::NoExitPath,
    ] {
        assert_eq!(warn_only.severity(), Severity::Warn);
    }
    // A graph with only hygiene findings still passes verify().
    let mut g = diamond();
    let orphan = g.add_block();
    let c = g.append_inst(orphan, Inst::Const(ConstValue::Int(7)), Type::Int);
    g.set_terminator(orphan, Terminator::Return { value: Some(c) });
    dbds_ir::verify(&g).expect("warn-severity findings must not fail verification");
}

#[test]
fn every_graph_level_lint_has_a_corpus_entry() {
    // The four non-graph lints are exercised in their home crates (see
    // the module docs); everything else must fire somewhere above. This
    // keeps the corpus honest when a new LintId lands.
    let graph_level = [
        LintId::GraphConsistency,
        LintId::BranchProbability,
        LintId::PhiPlacement,
        LintId::ParamPlacement,
        LintId::DanglingUse,
        LintId::TypeError,
        LintId::SsaDominance,
        LintId::UnreachableBlock,
        LintId::TrivialPhi,
        LintId::CriticalEdge,
        LintId::NoExitPath,
        LintId::ControlDepViolation,
    ];
    let elsewhere = [
        LintId::StaleAnalysis,
        LintId::NonFiniteBenefit,
        LintId::NegativeAccruedSize,
        LintId::Misprediction,
        LintId::FrontierViolation,
    ];
    for id in LintId::ALL {
        assert!(
            graph_level.contains(id) || elsewhere.contains(id),
            "{} has no fail-first coverage",
            id.name()
        );
    }
}
