//! End-to-end daemon tests: a real listener, real sockets, the full
//! frame protocol — covering the hit/miss path, typed errors, load
//! shedding, status counters and clean shutdown.

use dbds_core::OptLevel;
use dbds_server::json::Json;
use dbds_server::{
    serve, Client, CompileRequest, CompileSource, ServerConfig, ServiceError, StoreChoice,
};

fn compile_req(name: &str) -> CompileRequest {
    CompileRequest {
        source: CompileSource::Workload(name.into()),
        level: OptLevel::Dbds,
        deadline_ms: None,
    }
}

fn counter(status: &Json, name: &str) -> u64 {
    status
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("status missing counter {name}: {status:?}"))
}

#[test]
fn tcp_session_hit_miss_status_shutdown() {
    let handle = serve(ServerConfig::default()).expect("serve");
    let addr = handle.addr.clone();

    let mut client = Client::connect(&addr).expect("connect");
    let cold = client.compile(compile_req("wordcount")).expect("compile");
    let warm = client.compile(compile_req("wordcount")).expect("compile");
    let cold = cold.expect("cold request failed");
    let warm = warm.expect("warm request failed");
    assert!(!cold.cached, "first request must miss");
    assert!(warm.cached, "second request must hit");
    assert_eq!(
        cold.artifact, warm.artifact,
        "hit must serve identical bytes"
    );
    assert!(!warm.artifact.ir.is_empty());

    // Typed errors: unknown workload, zero deadline.
    let bad = client
        .compile(compile_req("no-such-workload"))
        .expect("rpc");
    assert!(matches!(bad, Err(ServiceError::BadRequest(_))), "{bad:?}");
    let mut speedy = compile_req("wordcount");
    speedy.level = OptLevel::Dupalot; // distinct key: not already cached
    speedy.deadline_ms = Some(0);
    let timed_out = client.compile(speedy).expect("rpc");
    assert_eq!(timed_out, Err(ServiceError::DeadlineExceeded));

    // A second client sees the same daemon (and the cache).
    let mut other = Client::connect(&addr).expect("connect 2");
    let warm2 = other.compile(compile_req("wordcount")).expect("compile");
    assert!(warm2.expect("request failed").cached);

    let status = client.status().expect("status");
    assert_eq!(
        status.get("proto").and_then(Json::as_str),
        Some(dbds_server::PROTO_VERSION)
    );
    assert_eq!(counter(&status, "hits"), 2);
    assert_eq!(counter(&status, "misses"), 2); // wordcount cold + deadline try
    assert_eq!(counter(&status, "bad_requests"), 1);
    assert_eq!(counter(&status, "deadline_exceeded"), 1);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("dbds-daemon-test-{}.sock", std::process::id()));
    let handle = serve(ServerConfig {
        listen: format!("unix:{}", path.display()),
        ..ServerConfig::default()
    })
    .expect("serve");

    let mut client = Client::connect(&handle.addr).expect("connect");
    let served = client
        .compile(CompileRequest {
            source: CompileSource::IrText("func @u(v0: int) {\nb0:\n  return v0\n}\n".into()),
            level: OptLevel::Baseline,
            deadline_ms: None,
        })
        .expect("compile")
        .expect("request failed");
    assert!(!served.cached);
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_queue_sheds_with_typed_overloaded() {
    let handle = serve(ServerConfig {
        max_queue: 0,
        ..ServerConfig::default()
    })
    .expect("serve");

    let mut client = Client::connect(&handle.addr).expect("connect");
    let out = client.compile(compile_req("wordcount")).expect("rpc");
    assert_eq!(out, Err(ServiceError::Overloaded));

    // Status and shutdown are always admitted, and the shed shows up
    // in the counters.
    let status = client.status().expect("status");
    assert_eq!(counter(&status, "shed"), 1);
    assert_eq!(counter(&status, "requests"), 0);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Regression for the check-then-increment admission race: with many
/// clients racing, the old two-step admission could admit more jobs
/// than `max_queue`. The daemon tracks the high-water mark of the queue
/// depth, so the bound is checked directly — and every request must be
/// either served or shed with the typed error, never dropped.
#[test]
fn concurrent_clients_never_exceed_the_admission_bound() {
    const CLIENTS: usize = 8;
    const REQS_PER_CLIENT: usize = 3;
    let handle = serve(ServerConfig {
        max_queue: 2,
        ..ServerConfig::default()
    })
    .expect("serve");
    let addr = handle.addr.clone();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let mut served = 0u64;
                let mut shed = 0u64;
                for _ in 0..REQS_PER_CLIENT {
                    match client.compile(compile_req("wordcount")).expect("rpc") {
                        Ok(_) => served += 1,
                        Err(ServiceError::Overloaded) => shed += 1,
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
                (served, shed)
            })
        })
        .collect();
    let (mut served, mut shed) = (0u64, 0u64);
    for worker in workers {
        let (s, d) = worker.join().expect("client thread");
        served += s;
        shed += d;
    }

    assert_eq!(served + shed, (CLIENTS * REQS_PER_CLIENT) as u64);
    assert!(
        handle.peak_queue() <= 2,
        "admission bound breached: peak queue depth {} > 2",
        handle.peak_queue()
    );
    let mut client = Client::connect(&addr).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(counter(&status, "requests"), served);
    assert_eq!(counter(&status, "shed"), shed);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// The same request sequence must produce byte-identical status output
/// whether one dispatcher owns every shard or four split them.
#[test]
fn status_is_identical_across_dispatcher_counts() {
    let status_with = |dispatchers: usize| {
        let handle = serve(ServerConfig {
            dispatchers,
            ..ServerConfig::default()
        })
        .expect("serve");
        let mut client = Client::connect(&handle.addr).expect("connect");
        for name in ["wordcount", "charcount", "wordcount", "no-such-workload"] {
            let _ = client.compile(compile_req(name)).expect("rpc");
        }
        let status = client.status().expect("status").pretty();
        client.shutdown().expect("shutdown");
        handle.join();
        status
    };
    assert_eq!(status_with(1), status_with(4));
}

#[test]
fn disk_store_persists_across_daemon_restarts() {
    let dir = std::env::temp_dir().join(format!("dbds-daemon-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        store: StoreChoice::Disk(dir.clone()),
        ..ServerConfig::default()
    };

    let handle = serve(config()).expect("serve 1");
    let mut client = Client::connect(&handle.addr).expect("connect");
    let cold = client
        .compile(compile_req("wordcount"))
        .expect("rpc")
        .expect("request failed");
    assert!(!cold.cached);
    client.shutdown().expect("shutdown");
    handle.join();

    // A fresh daemon over the same directory serves from the cache.
    let handle = serve(config()).expect("serve 2");
    let mut client = Client::connect(&handle.addr).expect("connect");
    let warm = client
        .compile(compile_req("wordcount"))
        .expect("rpc")
        .expect("request failed");
    assert!(warm.cached, "restarted daemon must hit the on-disk cache");
    assert_eq!(warm.artifact, cold.artifact);
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
