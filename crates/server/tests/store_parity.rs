//! Backend parity property tests: the in-memory and on-disk store
//! backends must expose identical get/put/evict/keys semantics under
//! arbitrary operation sequences — including after the on-disk backend
//! is "crashed" (dropped with a stray temp file planted, as a writer
//! dying mid-install would leave it) and reopened through its recovery
//! scan.

use dbds_server::{CompiledStore, DiskStore, MemStore, StoreKey};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One step of a random store script. Keys and payloads come from a
/// small alphabet so collisions (overwrites, double evicts) actually
/// happen.
#[derive(Clone, Debug)]
enum Op {
    Put(u8, u8),
    Get(u8),
    Evict(u8),
    Keys,
    /// Crash the disk backend (drop it, plant a stray temp file) and
    /// reopen it; the in-memory reference is untouched — installed
    /// entries must survive, the stray temp must not surface.
    CrashAndReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (discriminant, key, payload version) — the vendored proptest
    // subset has no `prop_oneof`, so one mapped tuple picks the op.
    (0u8..10, 0u8..6, 0u8..255).prop_map(|(which, k, v)| match which {
        0..=3 => Op::Put(k, v),
        4..=6 => Op::Get(k),
        7 => Op::Evict(k),
        8 => Op::Keys,
        _ => Op::CrashAndReopen,
    })
}

fn key(k: u8) -> StoreKey {
    StoreKey {
        graph: u64::from(k) + 1,
        config: 0xC0FFEE,
    }
}

fn payload(k: u8, v: u8) -> Vec<u8> {
    format!("payload for key {k} version {v}\n").into_bytes()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbds-store-parity-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mem_and_disk_backends_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let dir = fresh_dir();
        let mut mem = MemStore::new();
        let mut disk = DiskStore::open(&dir).expect("open disk store");
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(k, v) => {
                    mem.put(&key(*k), &payload(*k, *v)).expect("mem put");
                    disk.put(&key(*k), &payload(*k, *v)).expect("disk put");
                }
                Op::Get(k) => {
                    let m = mem.get(&key(*k)).expect("mem get");
                    let d = disk.get(&key(*k)).expect("disk get");
                    prop_assert_eq!(m, d, "get({}) diverged at step {}", k, i);
                }
                Op::Evict(k) => {
                    let m = mem.evict(&key(*k)).expect("mem evict");
                    let d = disk.evict(&key(*k)).expect("disk evict");
                    prop_assert_eq!(m, d, "evict({}) diverged at step {}", k, i);
                }
                Op::Keys => {
                    prop_assert_eq!(
                        mem.keys().expect("mem keys"),
                        disk.keys().expect("disk keys"),
                        "keys() diverged at step {}", i
                    );
                }
                Op::CrashAndReopen => {
                    drop(disk);
                    // What a writer killed mid-install leaves behind.
                    std::fs::write(
                        dir.join(format!("{}.tmp4242", key(0))),
                        b"torn half-written entry",
                    )
                    .expect("plant stray tmp");
                    disk = DiskStore::open(&dir).expect("reopen disk store");
                    prop_assert_eq!(
                        disk.health().quarantined, 0,
                        "recovery scan quarantined a healthy entry at step {}", i
                    );
                }
            }
        }
        // Final state must agree in full.
        prop_assert_eq!(mem.keys().expect("mem keys"), disk.keys().expect("disk keys"));
        for k in 0u8..6 {
            prop_assert_eq!(
                mem.get(&key(k)).expect("mem get"),
                disk.get(&key(k)).expect("disk get"),
                "final get({}) diverged", k
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
