//! Sharding parity property tests: a [`ShardedStore`] must be
//! observably identical to an unsharded store fed the same operation
//! sequence — sharding partitions the data, it never changes what a
//! get/evict/keys observes. The bounded variant must likewise match N
//! independent per-shard [`BoundedStore`]s fed the shard-routed
//! subsequences, eviction order included, across crash-and-reopen
//! cycles (the clock reseeds from sorted keys on both sides).

use dbds_server::{BoundedStore, CompiledStore, DiskStore, MemStore, ShardedStore, StoreKey};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: u32 = 3;

/// One step of a random store script. Keys and payloads come from a
/// small alphabet so collisions (overwrites, double evicts) actually
/// happen.
#[derive(Clone, Debug)]
enum Op {
    Put(u8, u8),
    Get(u8),
    Evict(u8),
    Keys,
    /// Crash every disk shard (drop, plant a stray temp file in shard
    /// 0) and reopen the composite; installed entries must survive and
    /// the stray temp must not surface.
    CrashAndReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (discriminant, key, payload version) — the vendored proptest
    // subset has no `prop_oneof`, so one mapped tuple picks the op.
    (0u8..10, 0u8..6, 0u8..255).prop_map(|(which, k, v)| match which {
        0..=3 => Op::Put(k, v),
        4..=6 => Op::Get(k),
        7 => Op::Evict(k),
        8 => Op::Keys,
        _ => Op::CrashAndReopen,
    })
}

/// Keys with spread in the high graph bits — [`StoreKey::shard`] is a
/// multiply-shift over `graph >> 32`, so low-entropy fixtures would all
/// land on shard 0 and prove nothing.
fn key(k: u8) -> StoreKey {
    StoreKey {
        graph: (u64::from(k) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        config: 0xC0FFEE,
    }
}

fn payload(k: u8, v: u8) -> Vec<u8> {
    format!("payload for key {k} version {v}\n").into_bytes()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbds-shard-parity-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_sharded_disk(dir: &Path) -> ShardedStore {
    ShardedStore::new(
        (0..SHARDS)
            .map(|i| {
                Box::new(
                    DiskStore::open_shard(dir.join(format!("shard-{i}")), i)
                        .expect("open disk shard"),
                ) as Box<dyn CompiledStore>
            })
            .collect(),
    )
}

/// N independent bounded disk shards under `dir` — the reference model
/// for the bounded composite (ops are routed to them by hand).
fn open_bounded_shards(dir: &Path, budget: u64) -> Vec<BoundedStore> {
    (0..SHARDS)
        .map(|i| {
            let disk =
                DiskStore::open_shard(dir.join(format!("shard-{i}")), i).expect("open disk shard");
            BoundedStore::new(Box::new(disk), budget).expect("bound disk shard")
        })
        .collect()
}

fn open_bounded_sharded(dir: &Path, budget: u64) -> ShardedStore {
    ShardedStore::new(
        open_bounded_shards(dir, budget)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn CompiledStore>)
            .collect(),
    )
}

fn plant_stray_tmp(dir: &Path) {
    std::fs::create_dir_all(dir.join("shard-0")).expect("shard dir");
    std::fs::write(
        dir.join("shard-0").join(format!("{}.tmp4242", key(0))),
        b"torn half-written entry",
    )
    .expect("plant stray tmp");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ShardedStore over N disk shards ≡ one unsharded in-memory store.
    #[test]
    fn sharded_disk_matches_unsharded_reference(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let dir = fresh_dir("disk");
        let mut reference = MemStore::new();
        let mut sharded = open_sharded_disk(&dir);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(k, v) => {
                    reference.put(&key(*k), &payload(*k, *v)).expect("reference put");
                    sharded.put(&key(*k), &payload(*k, *v)).expect("sharded put");
                }
                Op::Get(k) => {
                    let want = reference.get(&key(*k)).expect("reference get");
                    let got = sharded.get(&key(*k)).expect("sharded get");
                    prop_assert_eq!(want, got, "get({}) diverged at step {}", k, i);
                }
                Op::Evict(k) => {
                    let want = reference.evict(&key(*k)).expect("reference evict");
                    let got = sharded.evict(&key(*k)).expect("sharded evict");
                    prop_assert_eq!(want, got, "evict({}) diverged at step {}", k, i);
                }
                Op::Keys => {
                    prop_assert_eq!(
                        reference.keys().expect("reference keys"),
                        sharded.keys().expect("sharded keys"),
                        "keys() diverged at step {}", i
                    );
                }
                Op::CrashAndReopen => {
                    drop(sharded);
                    plant_stray_tmp(&dir);
                    sharded = open_sharded_disk(&dir);
                    prop_assert_eq!(
                        sharded.health().quarantined, 0,
                        "recovery scan quarantined a healthy entry at step {}", i
                    );
                }
            }
        }
        prop_assert_eq!(
            reference.keys().expect("reference keys"),
            sharded.keys().expect("sharded keys")
        );
        for k in 0u8..6 {
            prop_assert_eq!(
                reference.get(&key(k)).expect("reference get"),
                sharded.get(&key(k)).expect("sharded get"),
                "final get({}) diverged", k
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bounded ShardedStore ≡ N independent bounded shards fed the
    /// shard-routed subsequences — same hits, same victims, same
    /// eviction totals, including across crash-and-reopen cycles.
    #[test]
    fn bounded_sharded_matches_independent_bounded_shards(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        // ~27-byte payloads, so two entries fit per shard and puts
        // under pressure actually trigger the clock.
        const BUDGET: u64 = 60;
        let dir_sharded = fresh_dir("bounded-sharded");
        let dir_reference = fresh_dir("bounded-reference");
        let mut sharded = open_bounded_sharded(&dir_sharded, BUDGET);
        let mut reference = open_bounded_shards(&dir_reference, BUDGET);
        let route = |k: u8| key(k).shard(SHARDS as usize);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Put(k, v) => {
                    reference[route(*k)].put(&key(*k), &payload(*k, *v)).expect("reference put");
                    sharded.put(&key(*k), &payload(*k, *v)).expect("sharded put");
                }
                Op::Get(k) => {
                    let want = reference[route(*k)].get(&key(*k)).expect("reference get");
                    let got = sharded.get(&key(*k)).expect("sharded get");
                    prop_assert_eq!(want, got, "get({}) diverged at step {}", k, i);
                }
                Op::Evict(k) => {
                    let want = reference[route(*k)].evict(&key(*k)).expect("reference evict");
                    let got = sharded.evict(&key(*k)).expect("sharded evict");
                    prop_assert_eq!(want, got, "evict({}) diverged at step {}", k, i);
                }
                Op::Keys => {
                    let mut want = Vec::new();
                    for shard in &mut reference {
                        want.extend(shard.keys().expect("reference keys"));
                    }
                    want.sort();
                    prop_assert_eq!(
                        want,
                        sharded.keys().expect("sharded keys"),
                        "keys() diverged at step {}", i
                    );
                }
                Op::CrashAndReopen => {
                    drop(sharded);
                    drop(std::mem::take(&mut reference));
                    plant_stray_tmp(&dir_sharded);
                    plant_stray_tmp(&dir_reference);
                    sharded = open_bounded_sharded(&dir_sharded, BUDGET);
                    reference = open_bounded_shards(&dir_reference, BUDGET);
                    prop_assert_eq!(
                        sharded.health().quarantined, 0,
                        "recovery scan quarantined a healthy entry at step {}", i
                    );
                }
            }
        }
        // Same surviving keys, same bytes, same eviction totals. Note
        // eviction counters reset on reopen on both sides, so they stay
        // comparable across crashes too.
        let mut want_keys = Vec::new();
        let mut want_evictions = 0;
        for shard in &mut reference {
            want_keys.extend(shard.keys().expect("reference keys"));
            want_evictions += shard.health().evictions;
        }
        want_keys.sort();
        prop_assert_eq!(want_keys, sharded.keys().expect("sharded keys"));
        prop_assert_eq!(want_evictions, sharded.health().evictions);
        for k in 0u8..6 {
            prop_assert_eq!(
                reference[route(k)].get(&key(k)).expect("reference get"),
                sharded.get(&key(k)).expect("sharded get"),
                "final get({}) diverged", k
            );
        }
        let _ = std::fs::remove_dir_all(&dir_sharded);
        let _ = std::fs::remove_dir_all(&dir_reference);
    }
}
