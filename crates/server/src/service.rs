//! The compilation service: request resolution, cache lookup with
//! verification, parallel fresh compilation, and the graceful
//! degradation ladder that keeps the service correct when the store is
//! not.
//!
//! # Degradation ladder
//!
//! For every request the service walks down this ladder and stops at
//! the first rung that yields a verified artifact:
//!
//! 1. **Hit** — the store returns a payload whose checksum, structure
//!    and IR verification all pass, and whose embedded key matches the
//!    request. Served as `cached: true`.
//! 2. **Heal** — the payload exists but fails any check: the entry is
//!    evicted (quarantined), the `quarantined` counter ticks, and the
//!    request falls through to a fresh compile.
//! 3. **Retry** — a store operation returns a transient error: it is
//!    retried up to [`ServiceConfig::store_retries`] times with linear
//!    backoff, ticking `retries`.
//! 4. **Degrade** — the store stays unavailable: the request is served
//!    by a fresh compile without caching, ticking `degraded`. A dead
//!    store never fails a request.
//!
//! Requests that a wall-clock deadline cut short get the typed
//! [`ServiceError::DeadlineExceeded`] and are *never* cached: a
//! deadline-truncated graph is wall-clock nondeterministic, and the
//! store's contract is that every entry is byte-identical to a fresh
//! compile of its key.

use crate::artifact::CompiledArtifact;
use crate::json::Json;
use crate::key::StoreKey;
use crate::store::{CompiledStore, StoreError};
use dbds_core::{compile, DbdsConfig, OptLevel, PhaseStats};
use dbds_costmodel::CostModel;
use dbds_ir::Graph;
use dbds_workloads::{all_workloads, Workload};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// What a request asks the service to compile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileSource {
    /// A named workload from the built-in suites.
    Workload(String),
    /// Inline IR text (class table + exactly one `func`).
    IrText(String),
}

/// One compile request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileRequest {
    /// What to compile.
    pub source: CompileSource,
    /// The optimization level to compile at.
    pub level: OptLevel,
    /// Optional per-request wall-clock deadline in milliseconds,
    /// installed into [`dbds_core::GuardConfig::deadline`].
    pub deadline_ms: Option<u64>,
}

/// The typed failure responses of the service. Every error a client
/// can observe is one of these — the service never panics a request
/// and never surfaces a raw store error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The request queue was full; retry later.
    Overloaded,
    /// The per-request deadline cut the compilation short; the partial
    /// result was discarded (deadline-truncated graphs are wall-clock
    /// nondeterministic and therefore neither served nor cached).
    DeadlineExceeded,
    /// The request itself was malformed (unknown workload, unparsable
    /// IR, unknown level); the payload is a user-facing message.
    BadRequest(String),
    /// The response was produced but does not fit in one protocol
    /// frame ([`crate::proto::MAX_FRAME`]); the client should split the
    /// request or raise the cap, the stream itself stays intact.
    FrameTooLarge,
}

impl ServiceError {
    /// Stable wire tag of the error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded => "overloaded",
            ServiceError::DeadlineExceeded => "deadline-exceeded",
            ServiceError::BadRequest(_) => "bad-request",
            ServiceError::FrameTooLarge => "frame-too-large",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "server overloaded, retry later"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::FrameTooLarge => {
                write!(f, "response exceeds the protocol frame cap")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successfully served compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServedResult {
    /// The verified artifact.
    pub artifact: CompiledArtifact,
    /// `true` when it came out of the store, `false` when freshly
    /// compiled for this request.
    pub cached: bool,
}

/// The outcome of one request.
pub type CompileOutcome = Result<ServedResult, ServiceError>;

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bounded retries for transient store errors (rung 3 of the
    /// degradation ladder).
    pub store_retries: u32,
    /// Linear backoff step between store retries.
    pub store_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_retries: 2,
            store_backoff: Duration::from_millis(5),
        }
    }
}

/// Deterministic service counters. Every field is a function of the
/// request sequence and the store contents only — never of wall-clock
/// or thread interleaving — so status reports are byte-identical
/// across `DBDS_UNIT_THREADS` settings (gated by a harness test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Requests accepted into a batch (sheds not included).
    pub requests: u64,
    /// Requests served from the store.
    pub hits: u64,
    /// Requests that required a fresh compile (including heals and
    /// degradations).
    pub misses: u64,
    /// Fresh results durably installed into the store.
    pub puts: u64,
    /// Store entries evicted because they failed parse, verification
    /// or key match after retrieval (store-internal checksum
    /// quarantines are reported separately via store health).
    pub quarantined: u64,
    /// Requests rejected with [`ServiceError::Overloaded`] before
    /// reaching a batch.
    pub shed: u64,
    /// Store-operation retries performed.
    pub retries: u64,
    /// Store operations abandoned after exhausting retries (the
    /// request was still served, uncached).
    pub degraded: u64,
    /// Requests rejected with [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests rejected with [`ServiceError::BadRequest`].
    pub bad_requests: u64,
}

impl ServiceCounters {
    /// Field-wise `self - earlier`; used for per-pass session deltas.
    #[must_use]
    pub fn delta(&self, earlier: &ServiceCounters) -> ServiceCounters {
        ServiceCounters {
            requests: self.requests - earlier.requests,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            puts: self.puts - earlier.puts,
            quarantined: self.quarantined - earlier.quarantined,
            shed: self.shed - earlier.shed,
            retries: self.retries - earlier.retries,
            degraded: self.degraded - earlier.degraded,
            deadline_exceeded: self.deadline_exceeded - earlier.deadline_exceeded,
            bad_requests: self.bad_requests - earlier.bad_requests,
        }
    }

    /// Field-wise `self + other`; used to total per-shard counters.
    #[must_use]
    pub fn sum(&self, other: &ServiceCounters) -> ServiceCounters {
        ServiceCounters {
            requests: self.requests + other.requests,
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            puts: self.puts + other.puts,
            quarantined: self.quarantined + other.quarantined,
            shed: self.shed + other.shed,
            retries: self.retries + other.retries,
            degraded: self.degraded + other.degraded,
            deadline_exceeded: self.deadline_exceeded + other.deadline_exceeded,
            bad_requests: self.bad_requests + other.bad_requests,
        }
    }

    /// The counters in stable report order.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("requests", self.requests),
            ("hits", self.hits),
            ("misses", self.misses),
            ("puts", self.puts),
            ("quarantined", self.quarantined),
            ("shed", self.shed),
            ("retries", self.retries),
            ("degraded", self.degraded),
            ("deadline_exceeded", self.deadline_exceeded),
            ("bad_requests", self.bad_requests),
        ]
    }

    /// JSON object in stable report order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.fields()
                .iter()
                .map(|(k, v)| ((*k).to_string(), Json::num(*v)))
                .collect(),
        )
    }
}

/// One shard of the service: a store slice and the counters for the
/// requests routed to it, guarded together by one lock so a shard's
/// counters are always consistent with its store.
struct Shard {
    store: Box<dyn CompiledStore>,
    counters: ServiceCounters,
}

/// Linear backoff steps are capped here so the sleep can never
/// overflow (`Duration × u32` panics on overflow) and a misconfigured
/// retry count cannot stall a dispatcher for minutes.
const BACKOFF_CAP_STEPS: u32 = 8;

/// The backoff before retry number `attempt` (1-based): linear in the
/// attempt, clamped to `[1, BACKOFF_CAP_STEPS]` steps, saturating
/// instead of panicking on overflow.
fn retry_backoff(step: Duration, attempt: u32) -> Duration {
    step.saturating_mul(attempt.clamp(1, BACKOFF_CAP_STEPS))
}

/// The compilation service: the store sharded by key prefix (each
/// shard with its own lock and counters), one cost model, one base
/// configuration, and the built-in workload table.
///
/// All entry points take `&self`: a request only ever locks the one
/// shard its key routes to, so requests on different shards proceed
/// concurrently while each shard observes its own requests strictly in
/// submission order — which is what keeps the (summed) counters
/// byte-identical however many dispatcher threads drive the service.
pub struct CompileService {
    shards: Vec<Mutex<Shard>>,
    /// Requests shed by admission control before reaching any shard.
    shed: AtomicU64,
    model: CostModel,
    base_cfg: DbdsConfig,
    cfg: ServiceConfig,
    workloads: BTreeMap<String, Workload>,
}

impl fmt::Debug for CompileService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("backend", &self.backend())
            .field("shards", &self.shards.len())
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl CompileService {
    /// Builds an unsharded (single-shard) service over `store`
    /// compiling with `base_cfg`.
    pub fn new(store: Box<dyn CompiledStore>, base_cfg: DbdsConfig, cfg: ServiceConfig) -> Self {
        CompileService::with_shards(vec![store], base_cfg, cfg)
    }

    /// Builds a service over one store per shard (at least one);
    /// requests route to `key.shard(stores.len())`. The shard count is
    /// part of the store layout, not of the execution plan: it must
    /// not change with thread or dispatcher counts.
    pub fn with_shards(
        stores: Vec<Box<dyn CompiledStore>>,
        base_cfg: DbdsConfig,
        cfg: ServiceConfig,
    ) -> Self {
        assert!(!stores.is_empty(), "the service needs >= 1 store shard");
        CompileService {
            shards: stores
                .into_iter()
                .map(|store| {
                    Mutex::new(Shard {
                        store,
                        counters: ServiceCounters::default(),
                    })
                })
                .collect(),
            shed: AtomicU64::new(0),
            model: CostModel::new(),
            base_cfg,
            cfg,
            workloads: all_workloads()
                .into_iter()
                .map(|w| (w.name.clone(), w))
                .collect(),
        }
    }

    /// Locks shard `i`; a poisoned lock is taken over as-is (counters
    /// and store are always left internally consistent).
    fn shard(&self, i: usize) -> MutexGuard<'_, Shard> {
        self.shards[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of store shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Backend name of the underlying store (shard 0 is
    /// representative: all shards share one backend kind).
    pub fn backend(&self) -> &'static str {
        self.shard(0).store.backend()
    }

    /// The shard (and thus dispatcher queue) `req` routes to: the
    /// shard of its store key, computable before any compilation
    /// because the key fingerprint excludes the deadline and thread
    /// counts. Unroutable (malformed) requests go to shard 0 so their
    /// `bad_requests` tick lands deterministically.
    pub fn shard_for(&self, req: &CompileRequest) -> usize {
        match self.resolve(&req.source) {
            Ok(graph) => {
                StoreKey::compute(&graph, &self.base_cfg, req.level).shard(self.shards.len())
            }
            Err(_) => 0,
        }
    }

    /// Current counters snapshot, summed over shards in shard order.
    pub fn counters(&self) -> ServiceCounters {
        let mut total = ServiceCounters::default();
        for i in 0..self.shards.len() {
            total = total.sum(&self.shard(i).counters);
        }
        total.shed += self.shed.load(Ordering::SeqCst);
        total
    }

    /// Records `n` requests shed by the admission queue.
    pub fn record_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::SeqCst);
    }

    /// Health snapshot of the underlying store, summed over shards
    /// (entry count plus store-internal checksum quarantines — which
    /// are distinct from the service-level verify quarantines in
    /// [`ServiceCounters::quarantined`] — plus budget evictions).
    pub fn store_health(&self) -> crate::store::StoreHealth {
        let mut total = crate::store::StoreHealth::default();
        for i in 0..self.shards.len() {
            let health = self.shard(i).store.health();
            total.entries += health.entries;
            total.quarantined += health.quarantined;
            total.evictions += health.evictions;
        }
        total
    }

    /// The status report: counters plus store health, as served to
    /// `dbds_client status` and embedded in harness reports. Shards
    /// are locked in shard order; the shape deliberately excludes the
    /// dispatcher count, so quiescent status output is byte-identical
    /// across `DBDS_DISPATCHERS` (gated in CI).
    pub fn status_json(&self) -> Json {
        let health = self.store_health();
        Json::Obj(vec![
            ("backend".into(), Json::str(self.backend())),
            ("shards".into(), Json::num(self.shards.len() as u64)),
            ("counters".into(), self.counters().to_json()),
            (
                "store".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::num(health.entries as u64)),
                    ("quarantined".into(), Json::num(health.quarantined)),
                    ("evictions".into(), Json::num(health.evictions)),
                ]),
            ),
        ])
    }

    /// Runs a store operation on one (locked) shard with bounded retry
    /// plus clamped linear backoff (rung 3); `Err` means the ladder
    /// fell through to rung 4.
    fn with_retry<T>(
        cfg: &ServiceConfig,
        shard: &mut Shard,
        mut op: impl FnMut(&mut dyn CompiledStore) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0;
        loop {
            match op(shard.store.as_mut()) {
                Ok(v) => return Ok(v),
                Err(_) if attempt < cfg.store_retries => {
                    attempt += 1;
                    shard.counters.retries += 1;
                    std::thread::sleep(retry_backoff(cfg.store_backoff, attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Resolves a request into a pristine graph (cloned, unoptimized)
    /// or a typed [`ServiceError::BadRequest`].
    fn resolve(&self, source: &CompileSource) -> Result<Graph, ServiceError> {
        match source {
            CompileSource::Workload(name) => self
                .workloads
                .get(name)
                .map(|w| w.graph.clone())
                .ok_or_else(|| ServiceError::BadRequest(format!("unknown workload `{name}`"))),
            CompileSource::IrText(text) => {
                let mut module = dbds_ir::parse_module(text)
                    .map_err(|e| ServiceError::BadRequest(format!("IR does not parse: {e}")))?;
                if module.graphs.len() != 1 {
                    return Err(ServiceError::BadRequest(format!(
                        "expected exactly one func, found {}",
                        module.graphs.len()
                    )));
                }
                Ok(module.graphs.remove(0))
            }
        }
    }

    /// Serves a batch of requests.
    ///
    /// Per shard, store lookups and installs run sequentially in
    /// submission order (this is what makes the counters
    /// deterministic: a request's counter effects depend only on its
    /// own shard's request subsequence, never on interleaving with
    /// other shards); the fresh compiles of all misses fan out
    /// together on the [`dbds_core::par`] unit pool and are committed
    /// back in submission order, locking only each miss's shard.
    pub fn compile_batch(&self, reqs: &[CompileRequest]) -> Vec<CompileOutcome> {
        let shard_count = self.shards.len();

        // Rungs 1–2, sequentially per request: resolve, key, probe the
        // store, verify anything it returns.
        let mut outcomes: Vec<Option<CompileOutcome>> = Vec::with_capacity(reqs.len());
        let mut misses: Vec<(usize, Graph, StoreKey, DbdsConfig, OptLevel, usize)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let resolved = self.resolve(&req.source);
            let graph = match resolved {
                Ok(g) => g,
                Err(e) => {
                    // Unroutable: accounted to shard 0, like shard_for.
                    let mut shard = self.shard(0);
                    shard.counters.requests += 1;
                    shard.counters.bad_requests += 1;
                    outcomes.push(Some(Err(e)));
                    continue;
                }
            };
            let mut cfg = self.base_cfg.clone();
            cfg.guard.deadline = req.deadline_ms.map(Duration::from_millis);
            let key = StoreKey::compute(&graph, &cfg, req.level);
            let shard_idx = key.shard(shard_count);
            let mut shard = self.shard(shard_idx);
            shard.counters.requests += 1;
            match Self::lookup_verified(&self.cfg, &mut shard, &key) {
                Some(artifact) => {
                    shard.counters.hits += 1;
                    outcomes.push(Some(Ok(ServedResult {
                        artifact,
                        cached: true,
                    })));
                }
                None => {
                    shard.counters.misses += 1;
                    outcomes.push(None);
                    misses.push((i, graph, key, cfg, req.level, shard_idx));
                }
            }
        }

        // Fresh compiles: fan out on the shared 2-D scheduler. Each
        // unit carries its own config (deadlines differ per request);
        // the pool plan still comes from the base config so
        // `DBDS_UNIT_THREADS` / `DBDS_SIM_THREADS` apply, and each
        // unit's inner tiers publish to the shared scheduler (forced
        // nominal here, matching `PoolPlan::per_unit`).
        let plan = self.base_cfg.pool_plan(misses.len());
        let model = &self.model;
        let (compiled, _loads, _ns) = dbds_core::par::run_units(
            plan.unit_workers,
            plan.sim_workers,
            &misses,
            |_i, (_idx, graph, _key, cfg, level, _shard)| {
                let mut g = graph.clone();
                let mut unit_cfg = cfg.clone();
                unit_cfg.unit_threads = 1;
                unit_cfg.sim_threads = 1;
                let stats = compile(&mut g, model, *level, &unit_cfg);
                (g, stats)
            },
        );

        // Commit in submission order: reject deadline-truncated
        // results, install the rest (rungs 3–4 for the put).
        for ((idx, _graph, key, _cfg, level, shard_idx), (g, stats)) in
            misses.into_iter().zip(compiled)
        {
            let mut shard = self.shard(shard_idx);
            let outcome = Self::commit_fresh(&self.cfg, &mut shard, key, level, &g, &stats);
            outcomes[idx] = Some(outcome);
        }

        outcomes
            .into_iter()
            .map(|o| o.unwrap_or(Err(ServiceError::Overloaded)))
            .collect()
    }

    /// Rungs 1–2: probe the shard's store for `key` and fully verify
    /// whatever comes back. Any failure heals to a miss, never to an
    /// error.
    fn lookup_verified(
        cfg: &ServiceConfig,
        shard: &mut Shard,
        key: &StoreKey,
    ) -> Option<CompiledArtifact> {
        let payload = match Self::with_retry(cfg, shard, |s| s.get(key)) {
            Ok(p) => p?,
            Err(_) => {
                // Rung 4: the store cannot even answer reads — compile
                // fresh, uncached.
                shard.counters.degraded += 1;
                return None;
            }
        };
        let ok = CompiledArtifact::parse(&payload)
            .ok()
            .filter(|a| a.key == *key)
            .filter(|a| a.verify().is_ok());
        if ok.is_none() {
            // Rung 2: structurally intact on disk (the checksum passed)
            // but semantically bad — evict and recompute.
            shard.counters.quarantined += 1;
            if Self::with_retry(cfg, shard, |s| s.evict(key)).is_err() {
                shard.counters.degraded += 1;
            }
        }
        ok
    }

    /// Turns one fresh compilation into an outcome: reject it if a
    /// deadline cut it short, otherwise serve it and try to install it
    /// into its shard.
    fn commit_fresh(
        cfg: &ServiceConfig,
        shard: &mut Shard,
        key: StoreKey,
        level: OptLevel,
        g: &Graph,
        stats: &PhaseStats,
    ) -> CompileOutcome {
        if stats.hit_deadline() {
            shard.counters.deadline_exceeded += 1;
            return Err(ServiceError::DeadlineExceeded);
        }
        let artifact = CompiledArtifact::from_compiled(key, level, g, stats);
        if stats.stopped_early().is_none() {
            match Self::with_retry(cfg, shard, |s| s.put(&key, &artifact.serialize())) {
                Ok(()) => shard.counters.puts += 1,
                Err(_) => shard.counters.degraded += 1,
            }
        }
        // Non-deadline early stops (e.g. fuel exhaustion) are
        // deterministic — the *result* is servable — but conservative:
        // only fully converged compilations enter the store.
        Ok(ServedResult {
            artifact,
            cached: false,
        })
    }
}

/// Counter deltas of one pass of a repeated-workload session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionPass {
    /// Requests served (hits + misses) this pass.
    pub served: u64,
    /// Counter deltas attributable to this pass.
    pub counters: ServiceCounters,
}

/// The result of [`run_session`]: per-pass counter deltas over the
/// full workload corpus, for cache-effectiveness reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Store backend name.
    pub backend: String,
    /// One entry per pass, in order.
    pub passes: Vec<SessionPass>,
    /// Final cumulative counters.
    pub totals: ServiceCounters,
    /// Budget evictions performed by the store over the session (0 for
    /// unbounded stores).
    pub evictions: u64,
}

impl SessionReport {
    /// Hit rate of pass `i` (0-based), in [0, 1].
    pub fn hit_rate(&self, i: usize) -> f64 {
        let p = &self.passes[i];
        let looked = p.counters.hits + p.counters.misses;
        if looked == 0 {
            0.0
        } else {
            p.counters.hits as f64 / looked as f64
        }
    }
}

/// The standard repeated-workload session: every built-in workload at
/// every `level`, `passes` times over. The first pass populates the
/// store; later passes measure its effectiveness (the acceptance gate
/// asserts a >90% second-pass hit rate).
pub fn run_session(svc: &CompileService, levels: &[OptLevel], passes: usize) -> SessionReport {
    let reqs: Vec<CompileRequest> = all_workloads()
        .iter()
        .flat_map(|w| {
            levels.iter().map(|&level| CompileRequest {
                source: CompileSource::Workload(w.name.clone()),
                level,
                deadline_ms: None,
            })
        })
        .collect();
    let mut report = SessionReport {
        backend: svc.backend().to_string(),
        ..SessionReport::default()
    };
    for _ in 0..passes {
        let before = svc.counters();
        let outcomes = svc.compile_batch(&reqs);
        let served = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        report.passes.push(SessionPass {
            served,
            counters: svc.counters().delta(&before),
        });
    }
    report.totals = svc.counters();
    report.evictions = svc.store_health().evictions;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn service() -> CompileService {
        CompileService::new(
            Box::new(MemStore::new()),
            DbdsConfig::default(),
            ServiceConfig::default(),
        )
    }

    fn req(name: &str, level: OptLevel) -> CompileRequest {
        CompileRequest {
            source: CompileSource::Workload(name.into()),
            level,
            deadline_ms: None,
        }
    }

    #[test]
    fn second_request_hits_and_is_byte_identical() {
        let svc = service();
        let r = req("wordcount", OptLevel::Dbds);
        let first = svc.compile_batch(std::slice::from_ref(&r));
        let second = svc.compile_batch(std::slice::from_ref(&r));
        let a = first[0].as_ref().unwrap();
        let b = second[0].as_ref().unwrap();
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.artifact, b.artifact);
        let c = svc.counters();
        assert_eq!((c.hits, c.misses, c.puts), (1, 1, 1));
    }

    #[test]
    fn unknown_workload_is_a_typed_bad_request() {
        let svc = service();
        let out = svc.compile_batch(&[req("no-such-benchmark", OptLevel::Dbds)]);
        match &out[0] {
            Err(ServiceError::BadRequest(msg)) => assert!(msg.contains("no-such-benchmark")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(svc.counters().bad_requests, 1);
    }

    #[test]
    fn zero_deadline_is_a_typed_error_and_never_cached() {
        let svc = service();
        let mut r = req("wordcount", OptLevel::Dbds);
        r.deadline_ms = Some(0);
        let out = svc.compile_batch(std::slice::from_ref(&r));
        assert_eq!(out[0], Err(ServiceError::DeadlineExceeded));
        let c = svc.counters();
        assert_eq!(c.deadline_exceeded, 1);
        assert_eq!(c.puts, 0, "deadline-truncated result must not be cached");
        // The same request without a deadline is a miss (nothing was
        // cached under the no-deadline key either).
        let out = svc.compile_batch(&[req("wordcount", OptLevel::Dbds)]);
        assert!(!out[0].as_ref().unwrap().cached);
    }

    #[test]
    fn ir_text_source_compiles_and_hits() {
        let ir = "func @tiny(v0: int) {\nb0:\n  return v0\n}\n";
        let svc = service();
        let r = CompileRequest {
            source: CompileSource::IrText(ir.into()),
            level: OptLevel::Baseline,
            deadline_ms: None,
        };
        let first = svc.compile_batch(std::slice::from_ref(&r));
        let second = svc.compile_batch(std::slice::from_ref(&r));
        assert!(!first[0].as_ref().unwrap().cached);
        assert!(second[0].as_ref().unwrap().cached);

        let bad = CompileRequest {
            source: CompileSource::IrText("not ir at all".into()),
            level: OptLevel::Baseline,
            deadline_ms: None,
        };
        assert!(matches!(
            svc.compile_batch(&[bad])[0],
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn retry_backoff_is_linear_clamped_and_never_panics() {
        let step = Duration::from_millis(5);
        // The ladder starts at one step — attempt 0 (out of contract)
        // clamps up rather than sleeping zero.
        assert_eq!(retry_backoff(step, 0), step);
        assert_eq!(retry_backoff(step, 1), step);
        assert_eq!(retry_backoff(step, 2), step * 2);
        assert_eq!(retry_backoff(step, 3), step * 3);
        // ...and is capped: a huge attempt number stays bounded.
        assert_eq!(retry_backoff(step, 1000), step * BACKOFF_CAP_STEPS);
        assert_eq!(retry_backoff(step, u32::MAX), step * BACKOFF_CAP_STEPS);
        // `Duration::MAX * 2` would panic; saturating_mul must not.
        assert_eq!(retry_backoff(Duration::MAX, u32::MAX), Duration::MAX);
    }

    #[test]
    fn sharded_service_counters_match_single_shard() {
        let single = service();
        let sharded = CompileService::with_shards(
            (0..4)
                .map(|_| Box::new(MemStore::new()) as Box<dyn CompiledStore>)
                .collect(),
            DbdsConfig::default(),
            ServiceConfig::default(),
        );
        let reqs = [
            req("wordcount", OptLevel::Dbds),
            req("wordcount", OptLevel::Dupalot),
            req("charcount", OptLevel::Dbds),
            req("no-such-benchmark", OptLevel::Dbds),
            req("wordcount", OptLevel::Dbds),
        ];
        let a: Vec<_> = single.compile_batch(&reqs);
        let b: Vec<_> = sharded.compile_batch(&reqs);
        assert_eq!(a, b, "outcomes must not depend on the shard count");
        assert_eq!(
            single.counters(),
            sharded.counters(),
            "summed counters must not depend on the shard count"
        );
        let again = sharded.compile_batch(&reqs[..3]);
        assert!(again.iter().all(|o| o.as_ref().is_ok_and(|s| s.cached)));
    }

    #[test]
    fn session_second_pass_hits_everything() {
        let svc = service();
        let report = run_session(&svc, &[OptLevel::Dbds], 2);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.hit_rate(0), 0.0);
        assert!(
            report.hit_rate(1) > 0.9,
            "second pass hit rate {} ≤ 0.9",
            report.hit_rate(1)
        );
        assert_eq!(
            report.passes[1].counters.misses, 0,
            "identical second pass must not miss"
        );
    }
}
