//! The compilation service: request resolution, cache lookup with
//! verification, parallel fresh compilation, and the graceful
//! degradation ladder that keeps the service correct when the store is
//! not.
//!
//! # Degradation ladder
//!
//! For every request the service walks down this ladder and stops at
//! the first rung that yields a verified artifact:
//!
//! 1. **Hit** — the store returns a payload whose checksum, structure
//!    and IR verification all pass, and whose embedded key matches the
//!    request. Served as `cached: true`.
//! 2. **Heal** — the payload exists but fails any check: the entry is
//!    evicted (quarantined), the `quarantined` counter ticks, and the
//!    request falls through to a fresh compile.
//! 3. **Retry** — a store operation returns a transient error: it is
//!    retried up to [`ServiceConfig::store_retries`] times with linear
//!    backoff, ticking `retries`.
//! 4. **Degrade** — the store stays unavailable: the request is served
//!    by a fresh compile without caching, ticking `degraded`. A dead
//!    store never fails a request.
//!
//! Requests that a wall-clock deadline cut short get the typed
//! [`ServiceError::DeadlineExceeded`] and are *never* cached: a
//! deadline-truncated graph is wall-clock nondeterministic, and the
//! store's contract is that every entry is byte-identical to a fresh
//! compile of its key.

use crate::artifact::CompiledArtifact;
use crate::json::Json;
use crate::key::StoreKey;
use crate::store::{CompiledStore, StoreError};
use dbds_core::{compile, DbdsConfig, OptLevel, PhaseStats};
use dbds_costmodel::CostModel;
use dbds_ir::Graph;
use dbds_workloads::{all_workloads, Workload};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// What a request asks the service to compile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileSource {
    /// A named workload from the built-in suites.
    Workload(String),
    /// Inline IR text (class table + exactly one `func`).
    IrText(String),
}

/// One compile request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileRequest {
    /// What to compile.
    pub source: CompileSource,
    /// The optimization level to compile at.
    pub level: OptLevel,
    /// Optional per-request wall-clock deadline in milliseconds,
    /// installed into [`dbds_core::GuardConfig::deadline`].
    pub deadline_ms: Option<u64>,
}

/// The typed failure responses of the service. Every error a client
/// can observe is one of these — the service never panics a request
/// and never surfaces a raw store error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The request queue was full; retry later.
    Overloaded,
    /// The per-request deadline cut the compilation short; the partial
    /// result was discarded (deadline-truncated graphs are wall-clock
    /// nondeterministic and therefore neither served nor cached).
    DeadlineExceeded,
    /// The request itself was malformed (unknown workload, unparsable
    /// IR, unknown level); the payload is a user-facing message.
    BadRequest(String),
}

impl ServiceError {
    /// Stable wire tag of the error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded => "overloaded",
            ServiceError::DeadlineExceeded => "deadline-exceeded",
            ServiceError::BadRequest(_) => "bad-request",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "server overloaded, retry later"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successfully served compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServedResult {
    /// The verified artifact.
    pub artifact: CompiledArtifact,
    /// `true` when it came out of the store, `false` when freshly
    /// compiled for this request.
    pub cached: bool,
}

/// The outcome of one request.
pub type CompileOutcome = Result<ServedResult, ServiceError>;

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bounded retries for transient store errors (rung 3 of the
    /// degradation ladder).
    pub store_retries: u32,
    /// Linear backoff step between store retries.
    pub store_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_retries: 2,
            store_backoff: Duration::from_millis(5),
        }
    }
}

/// Deterministic service counters. Every field is a function of the
/// request sequence and the store contents only — never of wall-clock
/// or thread interleaving — so status reports are byte-identical
/// across `DBDS_UNIT_THREADS` settings (gated by a harness test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Requests accepted into a batch (sheds not included).
    pub requests: u64,
    /// Requests served from the store.
    pub hits: u64,
    /// Requests that required a fresh compile (including heals and
    /// degradations).
    pub misses: u64,
    /// Fresh results durably installed into the store.
    pub puts: u64,
    /// Store entries evicted because they failed parse, verification
    /// or key match after retrieval (store-internal checksum
    /// quarantines are reported separately via store health).
    pub quarantined: u64,
    /// Requests rejected with [`ServiceError::Overloaded`] before
    /// reaching a batch.
    pub shed: u64,
    /// Store-operation retries performed.
    pub retries: u64,
    /// Store operations abandoned after exhausting retries (the
    /// request was still served, uncached).
    pub degraded: u64,
    /// Requests rejected with [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests rejected with [`ServiceError::BadRequest`].
    pub bad_requests: u64,
}

impl ServiceCounters {
    /// Field-wise `self - earlier`; used for per-pass session deltas.
    #[must_use]
    pub fn delta(&self, earlier: &ServiceCounters) -> ServiceCounters {
        ServiceCounters {
            requests: self.requests - earlier.requests,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            puts: self.puts - earlier.puts,
            quarantined: self.quarantined - earlier.quarantined,
            shed: self.shed - earlier.shed,
            retries: self.retries - earlier.retries,
            degraded: self.degraded - earlier.degraded,
            deadline_exceeded: self.deadline_exceeded - earlier.deadline_exceeded,
            bad_requests: self.bad_requests - earlier.bad_requests,
        }
    }

    /// The counters in stable report order.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("requests", self.requests),
            ("hits", self.hits),
            ("misses", self.misses),
            ("puts", self.puts),
            ("quarantined", self.quarantined),
            ("shed", self.shed),
            ("retries", self.retries),
            ("degraded", self.degraded),
            ("deadline_exceeded", self.deadline_exceeded),
            ("bad_requests", self.bad_requests),
        ]
    }

    /// JSON object in stable report order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.fields()
                .iter()
                .map(|(k, v)| ((*k).to_string(), Json::num(*v)))
                .collect(),
        )
    }
}

/// The compilation service: one store, one cost model, one base
/// configuration, and the built-in workload table.
pub struct CompileService {
    store: Box<dyn CompiledStore>,
    model: CostModel,
    base_cfg: DbdsConfig,
    cfg: ServiceConfig,
    counters: ServiceCounters,
    workloads: BTreeMap<String, Workload>,
}

impl fmt::Debug for CompileService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("backend", &self.store.backend())
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl CompileService {
    /// Builds a service over `store` compiling with `base_cfg`.
    pub fn new(store: Box<dyn CompiledStore>, base_cfg: DbdsConfig, cfg: ServiceConfig) -> Self {
        CompileService {
            store,
            model: CostModel::new(),
            base_cfg,
            cfg,
            counters: ServiceCounters::default(),
            workloads: all_workloads()
                .into_iter()
                .map(|w| (w.name.clone(), w))
                .collect(),
        }
    }

    /// Current counters snapshot.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// Records `n` requests shed by the admission queue.
    pub fn record_shed(&mut self, n: u64) {
        self.counters.shed += n;
    }

    /// Health snapshot of the underlying store (entry count plus
    /// store-internal checksum quarantines, which are distinct from
    /// the service-level verify quarantines in
    /// [`ServiceCounters::quarantined`]).
    pub fn store_health(&mut self) -> crate::store::StoreHealth {
        self.store.health()
    }

    /// The status report: counters plus store health, as served to
    /// `dbds_client status` and embedded in harness reports.
    pub fn status_json(&mut self) -> Json {
        let health = self.store.health();
        Json::Obj(vec![
            ("backend".into(), Json::str(self.store.backend())),
            ("counters".into(), self.counters.to_json()),
            (
                "store".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::num(health.entries as u64)),
                    ("quarantined".into(), Json::num(health.quarantined)),
                ]),
            ),
        ])
    }

    /// Runs a store operation with bounded retry + linear backoff
    /// (rung 3); `Err` means the ladder fell through to rung 4.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut dyn CompiledStore) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0;
        loop {
            match op(self.store.as_mut()) {
                Ok(v) => return Ok(v),
                Err(_) if attempt < self.cfg.store_retries => {
                    attempt += 1;
                    self.counters.retries += 1;
                    std::thread::sleep(self.cfg.store_backoff * attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Resolves a request into a pristine graph (cloned, unoptimized)
    /// or a typed [`ServiceError::BadRequest`].
    fn resolve(&self, source: &CompileSource) -> Result<Graph, ServiceError> {
        match source {
            CompileSource::Workload(name) => self
                .workloads
                .get(name)
                .map(|w| w.graph.clone())
                .ok_or_else(|| ServiceError::BadRequest(format!("unknown workload `{name}`"))),
            CompileSource::IrText(text) => {
                let mut module = dbds_ir::parse_module(text)
                    .map_err(|e| ServiceError::BadRequest(format!("IR does not parse: {e}")))?;
                if module.graphs.len() != 1 {
                    return Err(ServiceError::BadRequest(format!(
                        "expected exactly one func, found {}",
                        module.graphs.len()
                    )));
                }
                Ok(module.graphs.remove(0))
            }
        }
    }

    /// Serves a batch of requests.
    ///
    /// Store lookups and installs run sequentially in submission order
    /// (this is what makes the counters deterministic); the fresh
    /// compiles of all misses fan out together on the
    /// [`dbds_core::par`] unit pool and are committed back in
    /// submission order.
    pub fn compile_batch(&mut self, reqs: &[CompileRequest]) -> Vec<CompileOutcome> {
        self.counters.requests += reqs.len() as u64;

        // Rungs 1–2, sequentially per request: resolve, key, probe the
        // store, verify anything it returns.
        let mut outcomes: Vec<Option<CompileOutcome>> = Vec::with_capacity(reqs.len());
        let mut misses: Vec<(usize, Graph, StoreKey, DbdsConfig, OptLevel)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let graph = match self.resolve(&req.source) {
                Ok(g) => g,
                Err(e) => {
                    self.counters.bad_requests += 1;
                    outcomes.push(Some(Err(e)));
                    continue;
                }
            };
            let mut cfg = self.base_cfg.clone();
            cfg.guard.deadline = req.deadline_ms.map(Duration::from_millis);
            let key = StoreKey::compute(&graph, &cfg, req.level);
            match self.lookup_verified(&key) {
                Some(artifact) => {
                    self.counters.hits += 1;
                    outcomes.push(Some(Ok(ServedResult {
                        artifact,
                        cached: true,
                    })));
                }
                None => {
                    self.counters.misses += 1;
                    outcomes.push(None);
                    misses.push((i, graph, key, cfg, req.level));
                }
            }
        }

        // Fresh compiles: fan out on the unit pool. Each unit carries
        // its own config (deadlines differ per request); the pool plan
        // still comes from the base config so `DBDS_UNIT_THREADS`
        // applies.
        let (threads, pool_plan) = self.base_cfg.unit_plan(misses.len());
        let force_seq_sim = pool_plan.sim_threads == 1 && threads > 1;
        let model = &self.model;
        let (compiled, _loads, _ns) =
            dbds_core::par::run_units(threads, &misses, |_i, (_idx, graph, _key, cfg, level)| {
                let mut g = graph.clone();
                let mut unit_cfg = cfg.clone();
                unit_cfg.unit_threads = 1;
                if force_seq_sim {
                    unit_cfg.sim_threads = 1;
                }
                let stats = compile(&mut g, model, *level, &unit_cfg);
                (g, stats)
            });

        // Commit in submission order: reject deadline-truncated
        // results, install the rest (rungs 3–4 for the put).
        for ((idx, _graph, key, _cfg, level), (g, stats)) in misses.into_iter().zip(compiled) {
            let outcome = self.commit_fresh(key, level, &g, &stats);
            outcomes[idx] = Some(outcome);
        }

        outcomes
            .into_iter()
            .map(|o| o.unwrap_or(Err(ServiceError::Overloaded)))
            .collect()
    }

    /// Rungs 1–2: probe the store for `key` and fully verify whatever
    /// comes back. Any failure heals to a miss, never to an error.
    fn lookup_verified(&mut self, key: &StoreKey) -> Option<CompiledArtifact> {
        let payload = match self.with_retry(|s| s.get(key)) {
            Ok(p) => p?,
            Err(_) => {
                // Rung 4: the store cannot even answer reads — compile
                // fresh, uncached.
                self.counters.degraded += 1;
                return None;
            }
        };
        let ok = CompiledArtifact::parse(&payload)
            .ok()
            .filter(|a| a.key == *key)
            .filter(|a| a.verify().is_ok());
        if ok.is_none() {
            // Rung 2: structurally intact on disk (the checksum passed)
            // but semantically bad — evict and recompute.
            self.counters.quarantined += 1;
            if self.with_retry(|s| s.evict(key)).is_err() {
                self.counters.degraded += 1;
            }
        }
        ok
    }

    /// Turns one fresh compilation into an outcome: reject it if a
    /// deadline cut it short, otherwise serve it and try to install it.
    fn commit_fresh(
        &mut self,
        key: StoreKey,
        level: OptLevel,
        g: &Graph,
        stats: &PhaseStats,
    ) -> CompileOutcome {
        if stats.hit_deadline() {
            self.counters.deadline_exceeded += 1;
            return Err(ServiceError::DeadlineExceeded);
        }
        let artifact = CompiledArtifact::from_compiled(key, level, g, stats);
        if stats.stopped_early().is_none() {
            match self.with_retry(|s| s.put(&key, &artifact.serialize())) {
                Ok(()) => self.counters.puts += 1,
                Err(_) => self.counters.degraded += 1,
            }
        }
        // Non-deadline early stops (e.g. fuel exhaustion) are
        // deterministic — the *result* is servable — but conservative:
        // only fully converged compilations enter the store.
        Ok(ServedResult {
            artifact,
            cached: false,
        })
    }
}

/// Counter deltas of one pass of a repeated-workload session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionPass {
    /// Requests served (hits + misses) this pass.
    pub served: u64,
    /// Counter deltas attributable to this pass.
    pub counters: ServiceCounters,
}

/// The result of [`run_session`]: per-pass counter deltas over the
/// full workload corpus, for cache-effectiveness reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Store backend name.
    pub backend: String,
    /// One entry per pass, in order.
    pub passes: Vec<SessionPass>,
    /// Final cumulative counters.
    pub totals: ServiceCounters,
}

impl SessionReport {
    /// Hit rate of pass `i` (0-based), in [0, 1].
    pub fn hit_rate(&self, i: usize) -> f64 {
        let p = &self.passes[i];
        let looked = p.counters.hits + p.counters.misses;
        if looked == 0 {
            0.0
        } else {
            p.counters.hits as f64 / looked as f64
        }
    }
}

/// The standard repeated-workload session: every built-in workload at
/// every `level`, `passes` times over. The first pass populates the
/// store; later passes measure its effectiveness (the acceptance gate
/// asserts a >90% second-pass hit rate).
pub fn run_session(svc: &mut CompileService, levels: &[OptLevel], passes: usize) -> SessionReport {
    let reqs: Vec<CompileRequest> = all_workloads()
        .iter()
        .flat_map(|w| {
            levels.iter().map(|&level| CompileRequest {
                source: CompileSource::Workload(w.name.clone()),
                level,
                deadline_ms: None,
            })
        })
        .collect();
    let mut report = SessionReport {
        backend: svc.store.backend().to_string(),
        ..SessionReport::default()
    };
    for _ in 0..passes {
        let before = svc.counters();
        let outcomes = svc.compile_batch(&reqs);
        let served = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        report.passes.push(SessionPass {
            served,
            counters: svc.counters().delta(&before),
        });
    }
    report.totals = svc.counters();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn service() -> CompileService {
        CompileService::new(
            Box::new(MemStore::new()),
            DbdsConfig::default(),
            ServiceConfig::default(),
        )
    }

    fn req(name: &str, level: OptLevel) -> CompileRequest {
        CompileRequest {
            source: CompileSource::Workload(name.into()),
            level,
            deadline_ms: None,
        }
    }

    #[test]
    fn second_request_hits_and_is_byte_identical() {
        let mut svc = service();
        let r = req("wordcount", OptLevel::Dbds);
        let first = svc.compile_batch(std::slice::from_ref(&r));
        let second = svc.compile_batch(std::slice::from_ref(&r));
        let a = first[0].as_ref().unwrap();
        let b = second[0].as_ref().unwrap();
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(a.artifact, b.artifact);
        let c = svc.counters();
        assert_eq!((c.hits, c.misses, c.puts), (1, 1, 1));
    }

    #[test]
    fn unknown_workload_is_a_typed_bad_request() {
        let mut svc = service();
        let out = svc.compile_batch(&[req("no-such-benchmark", OptLevel::Dbds)]);
        match &out[0] {
            Err(ServiceError::BadRequest(msg)) => assert!(msg.contains("no-such-benchmark")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(svc.counters().bad_requests, 1);
    }

    #[test]
    fn zero_deadline_is_a_typed_error_and_never_cached() {
        let mut svc = service();
        let mut r = req("wordcount", OptLevel::Dbds);
        r.deadline_ms = Some(0);
        let out = svc.compile_batch(std::slice::from_ref(&r));
        assert_eq!(out[0], Err(ServiceError::DeadlineExceeded));
        let c = svc.counters();
        assert_eq!(c.deadline_exceeded, 1);
        assert_eq!(c.puts, 0, "deadline-truncated result must not be cached");
        // The same request without a deadline is a miss (nothing was
        // cached under the no-deadline key either).
        let out = svc.compile_batch(&[req("wordcount", OptLevel::Dbds)]);
        assert!(!out[0].as_ref().unwrap().cached);
    }

    #[test]
    fn ir_text_source_compiles_and_hits() {
        let ir = "func @tiny(v0: int) {\nb0:\n  return v0\n}\n";
        let mut svc = service();
        let r = CompileRequest {
            source: CompileSource::IrText(ir.into()),
            level: OptLevel::Baseline,
            deadline_ms: None,
        };
        let first = svc.compile_batch(std::slice::from_ref(&r));
        let second = svc.compile_batch(std::slice::from_ref(&r));
        assert!(!first[0].as_ref().unwrap().cached);
        assert!(second[0].as_ref().unwrap().cached);

        let bad = CompileRequest {
            source: CompileSource::IrText("not ir at all".into()),
            level: OptLevel::Baseline,
            deadline_ms: None,
        };
        assert!(matches!(
            svc.compile_batch(&[bad])[0],
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn session_second_pass_hits_everything() {
        let mut svc = service();
        let report = run_session(&mut svc, &[OptLevel::Dbds], 2);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.hit_rate(0), 0.0);
        assert!(
            report.hit_rate(1) > 0.9,
            "second pass hit rate {} ≤ 0.9",
            report.hit_rate(1)
        );
        assert_eq!(
            report.passes[1].counters.misses, 0,
            "identical second pass must not miss"
        );
    }
}
