//! A small blocking client for the `dbds-server` protocol, used by the
//! `dbds_client` binary, the harness's `--client` mode and the CI
//! scripted session.

use crate::json::Json;
use crate::proto::{parse_response, read_frame, write_frame, Request};
use crate::service::{CompileOutcome, CompileRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// One connection to a running daemon.
#[derive(Debug)]
pub enum Client {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain-socket transport.
    Unix(UnixStream),
}

impl Read for Client {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Client::Tcp(s) => s.read(buf),
            Client::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Client {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Client::Tcp(s) => s.write(buf),
            Client::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Client::Tcp(s) => s.flush(),
            Client::Unix(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects to `addr`: `host:port` for TCP or `unix:<path>` for a
    /// Unix domain socket (the same syntax `dbds-server --listen`
    /// takes).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the connection fails.
    pub fn connect(addr: &str) -> Result<Client, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            UnixStream::connect(path)
                .map(Client::Unix)
                .map_err(|e| format!("connect {addr}: {e}"))
        } else {
            TcpStream::connect(addr)
                .map(Client::Tcp)
                .map_err(|e| format!("connect {addr}: {e}"))
        }
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or when the server closes the
    /// connection without answering.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        write_frame(self, &req.to_json()).map_err(|e| format!("send: {e}"))?;
        read_frame(self)
            .map_err(|e| format!("receive: {e}"))?
            .ok_or_else(|| "server closed the connection".to_string())
    }

    /// Issues a compile request and decodes the typed outcome.
    ///
    /// # Errors
    ///
    /// Returns a message only for protocol violations; typed service
    /// errors come back as `Ok(Err(…))`.
    pub fn compile(&mut self, req: CompileRequest) -> Result<CompileOutcome, String> {
        let json = self.request(&Request::Compile(req))?;
        parse_response(&json)
    }

    /// Fetches the status report.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn status(&mut self) -> Result<Json, String> {
        self.request(&Request::Status)
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.request(&Request::Shutdown)
    }
}
