//! Content-addressed store keys: graph hash × config fingerprint.

use dbds_core::{DbdsConfig, OptLevel};
use dbds_ir::Graph;
use std::fmt;
use std::str::FromStr;

/// The address of a compiled artifact: the stable content hash of the
/// input graph plus the fingerprint of every result-affecting
/// configuration field (see [`DbdsConfig::fingerprint`]). Two requests
/// with equal keys are guaranteed to compile to byte-identical
/// artifacts, which is exactly what makes the store safe to share and
/// a corrupt entry safe to heal by recompute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// [`dbds_ir::content_hash`] of the pristine input graph.
    pub graph: u64,
    /// [`DbdsConfig::fingerprint`] of the compilation configuration.
    pub config: u64,
}

impl StoreKey {
    /// Computes the key for compiling `g` under `cfg` at `level`.
    pub fn compute(g: &Graph, cfg: &DbdsConfig, level: OptLevel) -> StoreKey {
        StoreKey {
            graph: dbds_ir::content_hash(g),
            config: cfg.fingerprint(level),
        }
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:016x}-c{:016x}", self.graph, self.config)
    }
}

impl FromStr for StoreKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("malformed store key `{s}`");
        let (g, c) = s.split_once('-').ok_or_else(err)?;
        let g = g.strip_prefix('g').ok_or_else(err)?;
        let c = c.strip_prefix('c').ok_or_else(err)?;
        if g.len() != 16 || c.len() != 16 {
            return Err(err());
        }
        Ok(StoreKey {
            graph: u64::from_str_radix(g, 16).map_err(|_| err())?,
            config: u64::from_str_radix(c, 16).map_err(|_| err())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, GraphBuilder, Type};
    use std::sync::Arc;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("k", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn display_parse_round_trips() {
        let k = StoreKey {
            graph: 0xdead_beef,
            config: u64::MAX,
        };
        assert_eq!(k.to_string().parse::<StoreKey>().unwrap(), k);
        assert_eq!(k.to_string(), "g00000000deadbeef-cffffffffffffffff");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "g12-c34",
            "x0-y0",
            "g00000000deadbeef",
            "g00000000deadbeefc0",
        ] {
            assert!(bad.parse::<StoreKey>().is_err(), "{bad}");
        }
    }

    #[test]
    fn level_and_config_change_the_key() {
        let g = graph();
        let cfg = DbdsConfig::default();
        let a = StoreKey::compute(&g, &cfg, OptLevel::Dbds);
        let b = StoreKey::compute(&g, &cfg, OptLevel::Dupalot);
        assert_ne!(a, b);
        let mut tweaked = cfg.clone();
        tweaked.tradeoff.benefit_scale = 128.0;
        assert_ne!(a, StoreKey::compute(&g, &tweaked, OptLevel::Dbds));
        // Thread counts are result-invariant and must not split the cache.
        let mut threads = cfg.clone();
        threads.sim_threads = 8;
        threads.unit_threads = 8;
        assert_eq!(a, StoreKey::compute(&g, &threads, OptLevel::Dbds));
    }
}
