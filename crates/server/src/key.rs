//! Content-addressed store keys: graph hash × config fingerprint.

use dbds_core::{DbdsConfig, OptLevel};
use dbds_ir::Graph;
use std::fmt;
use std::str::FromStr;

/// The address of a compiled artifact: the stable content hash of the
/// input graph plus the fingerprint of every result-affecting
/// configuration field (see [`DbdsConfig::fingerprint`]). Two requests
/// with equal keys are guaranteed to compile to byte-identical
/// artifacts, which is exactly what makes the store safe to share and
/// a corrupt entry safe to heal by recompute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// [`dbds_ir::content_hash`] of the pristine input graph.
    pub graph: u64,
    /// [`DbdsConfig::fingerprint`] of the compilation configuration.
    pub config: u64,
}

impl StoreKey {
    /// Computes the key for compiling `g` under `cfg` at `level`.
    pub fn compute(g: &Graph, cfg: &DbdsConfig, level: OptLevel) -> StoreKey {
        StoreKey {
            graph: dbds_ir::content_hash(g),
            config: cfg.fingerprint(level),
        }
    }

    /// The shard this key routes to in an `n`-shard store, derived from
    /// the top bits of the graph hash (the key prefix). Stable for a
    /// given `n`, so the same key always lands on the same shard, lock
    /// and dispatcher. `n = 0` is treated as a single shard.
    pub fn shard(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        // Multiply-shift over the top bits: uniform even when graph
        // hashes cluster in low bits, and independent of n's alignment.
        (((self.graph >> 32) * n as u64) >> 32) as usize
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:016x}-c{:016x}", self.graph, self.config)
    }
}

impl FromStr for StoreKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("malformed store key `{s}`");
        let (g, c) = s.split_once('-').ok_or_else(err)?;
        let g = g.strip_prefix('g').ok_or_else(err)?;
        let c = c.strip_prefix('c').ok_or_else(err)?;
        Ok(StoreKey {
            graph: parse_canonical_hex(g).ok_or_else(err)?,
            config: parse_canonical_hex(c).ok_or_else(err)?,
        })
    }
}

/// Parses exactly 16 lowercase hex digits. `u64::from_str_radix` is too
/// permissive here: it accepts a `+` sign and uppercase digits, so
/// non-canonical on-disk filenames (`g+00…`, `gDEAD…`) would alias the
/// canonical entry and let one key shadow another. Only the exact
/// [`fmt::Display`] form round-trips.
fn parse_canonical_hex(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, GraphBuilder, Type};
    use std::sync::Arc;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("k", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn display_parse_round_trips() {
        let k = StoreKey {
            graph: 0xdead_beef,
            config: u64::MAX,
        };
        assert_eq!(k.to_string().parse::<StoreKey>().unwrap(), k);
        assert_eq!(k.to_string(), "g00000000deadbeef-cffffffffffffffff");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "g12-c34",
            "x0-y0",
            "g00000000deadbeef",
            "g00000000deadbeefc0",
        ] {
            assert!(bad.parse::<StoreKey>().is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_non_canonical_hex() {
        // Each of these would alias g00000000deadbeef-c00000000000000ff
        // under a plain from_str_radix parse: a `+` sign keeps the
        // value intact, and uppercase digits parse to the same value.
        for bad in [
            "g+0000000deadbeef-c00000000000000ff",
            "g00000000DEADBEEF-c00000000000000ff",
            "g00000000deadbeef-c+000000000000ff",
            "g00000000deadbeef-c0000000000000 ff",
        ] {
            assert!(bad.parse::<StoreKey>().is_err(), "{bad} must not parse");
        }
        // The canonical form still round-trips.
        let k = "g00000000deadbeef-c00000000000000ff"
            .parse::<StoreKey>()
            .unwrap();
        assert_eq!(k.graph, 0xdead_beef);
        assert_eq!(k.config, 0xff);
    }

    #[test]
    fn shard_is_stable_in_range_and_spreads() {
        let keys: Vec<StoreKey> = (0..64u64)
            .map(|i| StoreKey {
                graph: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                config: 7,
            })
            .collect();
        for n in [1usize, 2, 3, 4, 8, 16] {
            let mut hit = vec![false; n];
            for k in &keys {
                let s = k.shard(n);
                assert!(s < n, "shard {s} out of range for n={n}");
                assert_eq!(s, k.shard(n), "shard must be stable");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "all {n} shards used: {hit:?}");
        }
        assert_eq!(keys[5].shard(0), 0, "n=0 behaves as one shard");
    }

    #[test]
    fn level_and_config_change_the_key() {
        let g = graph();
        let cfg = DbdsConfig::default();
        let a = StoreKey::compute(&g, &cfg, OptLevel::Dbds);
        let b = StoreKey::compute(&g, &cfg, OptLevel::Dupalot);
        assert_ne!(a, b);
        let mut tweaked = cfg.clone();
        tweaked.tradeoff.benefit_scale = 128.0;
        assert_ne!(a, StoreKey::compute(&g, &tweaked, OptLevel::Dbds));
        // Thread counts are result-invariant and must not split the cache.
        let mut threads = cfg.clone();
        threads.sim_threads = 8;
        threads.unit_threads = 8;
        assert_eq!(a, StoreKey::compute(&g, &threads, OptLevel::Dbds));
    }
}
