//! A minimal JSON tree: parse, compact printing, and a pretty printer
//! that reproduces the harness report layout byte-for-byte.
//!
//! The build environment has no serde, and the harness already emits
//! hand-rolled JSON reports. This module closes the loop: the wire
//! protocol and the report round-trip tests parse into a [`Json`]
//! tree and print back out. Two fidelity guarantees the tests rely on:
//!
//! - **Numbers keep their source text.** `1843.0` (an `f64` printed via
//!   `{:?}`) must not collapse to `1843` on reserialization, so
//!   [`Json::Num`] stores the raw token.
//! - **Object keys keep their order.** Objects are association lists,
//!   not maps, so `serialize → parse → reserialize` is the identity on
//!   the harness report.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: key-value pairs in source/insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor: a number from any displayable integer.
    pub fn num(v: impl fmt::Display) -> Json {
        Json::Num(v.to_string())
    }

    /// Convenience constructor: a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a numeric value that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Single-line rendering (the wire format).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Multi-line rendering in the harness-report style: two-space
    /// indent, every container element on its own line, `"key": value`,
    /// and a trailing newline. `format_json → parse → pretty` is the
    /// identity (the round-trip test in `dbds-harness` gates it).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    let _ = write!(out, "{:1$}", "", indent + 2);
                    v.write_pretty(out, indent + 2);
                }
                out.push('\n');
                let _ = write!(out, "{:1$}]", "", indent);
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    let _ = write!(out, "{:1$}{2}: ", "", indent + 2, escape(k));
                    v.write_pretty(out, indent + 2);
                }
                out.push('\n');
                let _ = write!(out, "{:1$}}}", "", indent);
            }
            other => other.write_compact(out),
        }
    }
}

/// Escapes a string into a quoted JSON literal — the same minimal
/// escaping the harness report uses.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON value from `text` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed number exponent"));
            }
        }
        // The slice is ASCII by construction.
        Ok(Json::Num(
            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // report/protocol (ASCII + control chars).
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance by whole UTF-8 characters.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "1843.0", "1.5e-3"] {
            assert_eq!(parse(text).unwrap().compact(), text, "{text}");
        }
    }

    #[test]
    fn numbers_keep_their_source_text() {
        assert_eq!(parse("1843.0").unwrap(), Json::Num("1843.0".into()));
        assert_eq!(parse("1843.0").unwrap().compact(), "1843.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = parse(r#""a\"b\\c\nd\u0007""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd\u{7}");
        assert_eq!(v.compact(), r#""a\"b\\c\nd\u0007""#);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let text = r#"{"z":1,"a":[true,{"k":"v"}],"m":null}"#;
        assert_eq!(parse(text).unwrap().compact(), text);
    }

    #[test]
    fn pretty_matches_report_style() {
        let v = Json::Obj(vec![
            ("sim_threads".into(), Json::num(1)),
            (
                "suites".into(),
                Json::Arr(vec![Json::Obj(vec![("suite".into(), Json::str("micro"))])]),
            ),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"sim_threads\": 1,\n  \"suites\": [\n    {\n      \"suite\": \"micro\"\n    }\n  ]\n}\n"
        );
        // Pretty output re-parses to the same tree.
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("nul").is_err());
    }
}
