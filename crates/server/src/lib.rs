//! # dbds-server — the crash-safe DBDS compilation service
//!
//! A long-running daemon that accepts compile requests (a workload
//! name or inline IR, an opt level, an optional deadline) over a Unix
//! or TCP socket, dispatches them onto the unit-level parallel
//! compilation pool, and memoizes verified results in a
//! content-addressed store keyed by graph content hash × configuration
//! fingerprint.
//!
//! The design goal is *robustness as a feature*: a corrupted, dead or
//! read-only store must never produce a wrong compilation result or a
//! failed request — at worst a slower one. See the module docs of
//! [`store`] (crash-safety contract), [`service`] (graceful
//! degradation ladder) and [`daemon`] (admission control) for the
//! specific guarantees, and `DESIGN.md` §"Compilation service" for the
//! overall argument. The `servsim` binary (behind the
//! `fault-injection` feature) sweeps deterministic store faults — torn
//! writes, bit flips on read, ENOSPC, writers killed before their
//! atomic rename, dead and read-only store directories — and asserts
//! that every served result stays byte-identical to a fresh compile.
//!
//! # Examples
//!
//! In-process service with an in-memory store:
//!
//! ```
//! use dbds_core::OptLevel;
//! use dbds_server::{
//!     CompileRequest, CompileService, CompileSource, MemStore, ServiceConfig,
//! };
//!
//! let mut svc = CompileService::new(
//!     Box::new(MemStore::new()),
//!     dbds_core::DbdsConfig::default(),
//!     ServiceConfig::default(),
//! );
//! let req = CompileRequest {
//!     source: CompileSource::Workload("wordcount".into()),
//!     level: OptLevel::Dbds,
//!     deadline_ms: None,
//! };
//! let cold = svc.compile_batch(std::slice::from_ref(&req));
//! let warm = svc.compile_batch(std::slice::from_ref(&req));
//! assert!(!cold[0].as_ref().unwrap().cached);
//! assert!(warm[0].as_ref().unwrap().cached);
//! assert_eq!(
//!     cold[0].as_ref().unwrap().artifact,
//!     warm[0].as_ref().unwrap().artifact
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod artifact;
pub mod client;
pub mod daemon;
pub mod json;
pub mod key;
pub mod proto;
pub mod service;
pub mod store;

pub use artifact::{ArtifactCounters, ArtifactError, CompiledArtifact, ARTIFACT_MAGIC};
pub use client::Client;
pub use daemon::{serve, ServerConfig, ServerHandle, StoreChoice};
pub use key::StoreKey;
pub use proto::FrameError;
pub use proto::{level_from_name, Request, MAX_FRAME, PROTO_VERSION};
pub use service::{
    run_session, CompileOutcome, CompileRequest, CompileService, CompileSource, ServedResult,
    ServiceConfig, ServiceCounters, ServiceError, SessionPass, SessionReport,
};
pub use store::{
    BoundedStore, CompiledStore, DiskStore, MemStore, ShardedStore, StoreError, StoreHealth,
    TieredStore,
};
