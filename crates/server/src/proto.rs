//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every message is a 4-byte big-endian payload length followed by that
//! many bytes of compact JSON. Requests are tagged objects
//! (`{"op": "compile" | "status" | "shutdown", ...}`); responses carry
//! `"ok": true` plus the payload, or `"ok": false` plus a typed error
//! kind (`overloaded`, `deadline-exceeded`, `bad-request`) and a
//! user-facing message. Frames are capped at [`MAX_FRAME`] bytes so a
//! corrupt or hostile length prefix cannot make either side allocate
//! unboundedly.

use crate::json::{parse, Json};
use crate::service::{CompileOutcome, CompileRequest, CompileSource, ServedResult, ServiceError};
use dbds_core::OptLevel;
use std::fmt;
use std::io::{Read, Write};

/// Protocol version tag, included in status responses.
pub const PROTO_VERSION: &str = "dbds-server-proto-v1";

/// Upper bound on one frame's payload (16 MiB — an artifact for the
/// largest built-in workload is well under 1 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile something.
    Compile(CompileRequest),
    /// Report service counters and store health.
    Status,
    /// Drain and stop the daemon.
    Shutdown,
}

/// Parses an opt level from its stable lowercase name.
pub fn level_from_name(name: &str) -> Option<OptLevel> {
    [
        OptLevel::Baseline,
        OptLevel::Dbds,
        OptLevel::Dupalot,
        OptLevel::Backtracking,
    ]
    .into_iter()
    .find(|l| l.name() == name)
}

impl Request {
    /// Encodes the request for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Status => Json::Obj(vec![("op".into(), Json::str("status"))]),
            Request::Shutdown => Json::Obj(vec![("op".into(), Json::str("shutdown"))]),
            Request::Compile(req) => {
                let mut pairs = vec![("op".into(), Json::str("compile"))];
                match &req.source {
                    CompileSource::Workload(name) => {
                        pairs.push(("workload".into(), Json::str(name.clone())));
                    }
                    CompileSource::IrText(text) => {
                        pairs.push(("ir".into(), Json::str(text.clone())));
                    }
                }
                pairs.push(("level".into(), Json::str(req.level.name())));
                if let Some(ms) = req.deadline_ms {
                    pairs.push(("deadline_ms".into(), Json::num(ms)));
                }
                Json::Obj(pairs)
            }
        }
    }

    /// Decodes a request from a wire JSON object.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for malformed requests (unknown
    /// op or level, missing fields) — the daemon turns it into a
    /// `bad-request` response.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing `op` field")?;
        match op {
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "compile" => {
                let source = match (
                    v.get("workload").and_then(Json::as_str),
                    v.get("ir").and_then(Json::as_str),
                ) {
                    (Some(name), None) => CompileSource::Workload(name.to_string()),
                    (None, Some(text)) => CompileSource::IrText(text.to_string()),
                    _ => return Err("compile needs exactly one of `workload` or `ir`".into()),
                };
                let level_name = v
                    .get("level")
                    .and_then(Json::as_str)
                    .ok_or("missing `level` field")?;
                let level = level_from_name(level_name)
                    .ok_or_else(|| format!("unknown level `{level_name}`"))?;
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(n) => Some(n.as_u64().ok_or("`deadline_ms` must be a u64")?),
                };
                Ok(Request::Compile(CompileRequest {
                    source,
                    level,
                    deadline_ms,
                }))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Encodes one compile outcome as a response object.
pub fn response_json(outcome: &CompileOutcome) -> Json {
    match outcome {
        Ok(served) => {
            let a = &served.artifact;
            let c = &a.counters;
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cached".into(), Json::Bool(served.cached)),
                ("key".into(), Json::str(a.key.to_string())),
                ("level".into(), Json::str(a.level.clone())),
                ("work".into(), Json::num(c.work)),
                ("iterations".into(), Json::num(c.iterations)),
                ("candidates".into(), Json::num(c.candidates)),
                ("duplications".into(), Json::num(c.duplications)),
                ("final_size".into(), Json::num(c.final_size)),
                ("classes".into(), Json::str(a.classes.clone())),
                ("ir".into(), Json::str(a.ir.clone())),
            ])
        }
        Err(e) => error_json(e),
    }
}

/// Encodes a typed service error as a response object. The `message`
/// field carries the bare payload for `bad-request` (so the error
/// round-trips exactly) and the display string otherwise.
pub fn error_json(e: &ServiceError) -> Json {
    let message = match e {
        ServiceError::BadRequest(msg) => msg.clone(),
        other => other.to_string(),
    };
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(e.kind())),
        ("message".into(), Json::str(message)),
    ])
}

/// Client-side decode of a compile response back into an outcome.
///
/// # Errors
///
/// Returns a message when the response is not a well-formed compile
/// response at all (protocol violation, as opposed to a typed error).
pub fn parse_response(v: &Json) -> Result<CompileOutcome, String> {
    let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing `ok`")?;
    if !ok {
        let kind = v
            .get("error")
            .and_then(Json::as_str)
            .ok_or("missing `error`")?;
        let msg = v
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        return Ok(Err(match kind {
            "overloaded" => ServiceError::Overloaded,
            "deadline-exceeded" => ServiceError::DeadlineExceeded,
            "bad-request" => ServiceError::BadRequest(msg),
            "frame-too-large" => ServiceError::FrameTooLarge,
            other => return Err(format!("unknown error kind `{other}`")),
        }));
    }
    let field = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_string);
    let num = |k: &str| v.get(k).and_then(Json::as_u64);
    let key = field("key")
        .ok_or("missing `key`")?
        .parse()
        .map_err(|e: String| e)?;
    Ok(Ok(ServedResult {
        cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        artifact: crate::artifact::CompiledArtifact {
            key,
            level: field("level").ok_or("missing `level`")?,
            classes: field("classes").ok_or("missing `classes`")?,
            ir: field("ir").ok_or("missing `ir`")?,
            counters: crate::artifact::ArtifactCounters {
                work: num("work").ok_or("missing `work`")?,
                iterations: num("iterations").ok_or("missing `iterations`")?,
                candidates: num("candidates").ok_or("missing `candidates`")?,
                duplications: num("duplications").ok_or("missing `duplications`")?,
                final_size: num("final_size").ok_or("missing `final_size`")?,
            },
        },
    }))
}

/// Why a frame could not be written: the caller must distinguish an
/// oversized payload (the stream is still intact — a typed error
/// response can go out in its place) from a dead connection.
#[derive(Debug)]
pub enum FrameError {
    /// The encoded payload exceeds [`MAX_FRAME`]; nothing was written,
    /// the stream is still usable. Carries the offending payload size.
    TooLarge(usize),
    /// The underlying stream failed mid-write; the connection is gone.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "frame write failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> std::io::Error {
        match e {
            FrameError::TooLarge(_) => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            }
            FrameError::Io(io) => io,
        }
    }
}

/// Writes one frame: 4-byte big-endian length, then the compact JSON.
///
/// The cap is enforced *before* the length prefix goes out: an
/// oversized payload must never truncate the 4-byte prefix mid-stream
/// (`payload.len() as u32` would silently wrap) and corrupt every
/// following frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] for a frame over [`MAX_FRAME`] (stream
/// untouched), [`FrameError::Io`] for an underlying write failure.
pub fn write_frame(w: &mut impl Write, v: &Json) -> Result<(), FrameError> {
    let payload = v.compact().into_bytes();
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())
        .map_err(FrameError::Io)?;
    w.write_all(&payload).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Reads one frame; `Ok(None)` on clean EOF before the length prefix.
///
/// # Errors
///
/// Returns the underlying I/O error, an error for an oversized length
/// prefix, or a parse error for a malformed payload.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside frame length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    parse(&text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Status,
            Request::Shutdown,
            Request::Compile(CompileRequest {
                source: CompileSource::Workload("wordcount".into()),
                level: OptLevel::Dbds,
                deadline_ms: Some(250),
            }),
            Request::Compile(CompileRequest {
                source: CompileSource::IrText("func @f() -> i64 { ... }".into()),
                level: OptLevel::Baseline,
                deadline_ms: None,
            }),
        ];
        for req in reqs {
            assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (text, needle) in [
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"compile","level":"dbds"}"#, "exactly one of"),
            (
                r#"{"op":"compile","workload":"a","ir":"b","level":"dbds"}"#,
                "exactly one of",
            ),
            (
                r#"{"op":"compile","workload":"a","level":"O9"}"#,
                "unknown level",
            ),
            (r#"{"hello":1}"#, "missing `op`"),
        ] {
            let v = parse(text).unwrap();
            let err = Request::from_json(&v).unwrap_err();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        }
    }

    #[test]
    fn error_responses_round_trip() {
        for e in [
            ServiceError::Overloaded,
            ServiceError::DeadlineExceeded,
            ServiceError::BadRequest("nope".into()),
            ServiceError::FrameTooLarge,
        ] {
            let parsed = parse_response(&error_json(&e)).unwrap();
            assert_eq!(parsed, Err(e));
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let v = Request::Status.to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        let mut bad = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bad.extend_from_slice(b"xx");
        assert!(read_frame(&mut &bad[..]).is_err());
    }

    #[test]
    fn oversized_write_is_typed_and_leaves_the_stream_clean() {
        // A payload just over the cap: the JSON string body alone
        // exceeds MAX_FRAME once quoted.
        let huge = Json::str("x".repeat(MAX_FRAME));
        let mut buf = Vec::new();
        match write_frame(&mut buf, &huge) {
            Err(FrameError::TooLarge(len)) => assert!(len > MAX_FRAME, "{len}"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(
            buf.is_empty(),
            "an oversized frame must not emit a length prefix: a \
             truncated `len as u32` would corrupt every following frame"
        );
        // The stream is still usable: a typed error goes out in place
        // of the oversized response.
        write_frame(&mut buf, &error_json(&ServiceError::FrameTooLarge)).unwrap();
        let parsed = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(
            parse_response(&parsed),
            Ok(Err(ServiceError::FrameTooLarge))
        );
    }
}
