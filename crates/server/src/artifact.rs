//! The compiled artifact: what the compilation service stores, serves
//! and verifies.
//!
//! An artifact is the canonical textual form of a compiled graph (class
//! table + body — exactly what a fresh compile prints) plus the
//! deterministic work counters of the compilation that produced it. The
//! serialization is a line-oriented header with explicit byte lengths,
//! so parsing is unambiguous and a truncated or bit-flipped payload is
//! structurally detectable even before the store's checksum footer or
//! the IR verifier get a say.

use crate::key::StoreKey;
use dbds_core::{OptLevel, PhaseStats};
use dbds_ir::{parse_module, print_class_table, print_graph, Graph};
use std::fmt;
use std::fmt::Write as _;

/// The artifact serialization magic/version line.
pub const ARTIFACT_MAGIC: &str = "dbds-artifact-v1";

/// Deterministic work counters of the compilation that produced an
/// artifact — the cache-hit path serves these alongside the graph so a
/// hit response carries the same observability a fresh compile would.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactCounters {
    /// Deterministic compile-work counter ([`PhaseStats::work`]).
    pub work: u64,
    /// DBDS iterations executed.
    pub iterations: u64,
    /// Predecessor→merge pairs simulated.
    pub candidates: u64,
    /// Duplications performed.
    pub duplications: u64,
    /// Estimated code size after the phase.
    pub final_size: u64,
}

impl ArtifactCounters {
    /// Extracts the deterministic subset from a compilation's stats.
    pub fn from_stats(stats: &PhaseStats) -> Self {
        ArtifactCounters {
            work: stats.work,
            iterations: stats.iterations as u64,
            candidates: stats.candidates as u64,
            duplications: stats.duplications as u64,
            final_size: stats.final_size,
        }
    }
}

/// A verified compiled graph plus its provenance, as stored in and
/// served from the content-addressed store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledArtifact {
    /// The content-addressed key the artifact was stored under.
    pub key: StoreKey,
    /// The opt level it was compiled at (stable lowercase name).
    pub level: String,
    /// Printed class table (possibly empty).
    pub classes: String,
    /// Printed graph body (canonical text; byte-identical to what a
    /// fresh compile of the same key prints).
    pub ir: String,
    /// Deterministic work counters of the producing compilation.
    pub counters: ArtifactCounters,
}

/// Why an artifact failed to parse or verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactError(pub String);

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact error: {}", self.0)
    }
}

impl std::error::Error for ArtifactError {}

impl CompiledArtifact {
    /// Builds the artifact for a freshly compiled graph.
    pub fn from_compiled(key: StoreKey, level: OptLevel, g: &Graph, stats: &PhaseStats) -> Self {
        CompiledArtifact {
            key,
            level: level.name().to_string(),
            classes: print_class_table(g.class_table()),
            ir: print_graph(g),
            counters: ArtifactCounters::from_stats(stats),
        }
    }

    /// Serializes into the store payload format.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = writeln!(out, "{ARTIFACT_MAGIC}");
        let _ = writeln!(out, "key: {}", self.key);
        let _ = writeln!(out, "level: {}", self.level);
        let c = &self.counters;
        let _ = writeln!(out, "work: {}", c.work);
        let _ = writeln!(out, "iterations: {}", c.iterations);
        let _ = writeln!(out, "candidates: {}", c.candidates);
        let _ = writeln!(out, "duplications: {}", c.duplications);
        let _ = writeln!(out, "final_size: {}", c.final_size);
        let _ = writeln!(out, "classes-bytes: {}", self.classes.len());
        let _ = writeln!(out, "ir-bytes: {}", self.ir.len());
        out.push_str(&self.classes);
        out.push_str(&self.ir);
        out.into_bytes()
    }

    /// Parses a store payload back into an artifact.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] naming the first malformed header
    /// line or length mismatch — the store treats any of these as a
    /// corrupt entry to quarantine.
    pub fn parse(payload: &[u8]) -> Result<CompiledArtifact, ArtifactError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ArtifactError("payload is not UTF-8".into()))?;
        let mut rest = text;
        if take_line(&mut rest, "")? != ARTIFACT_MAGIC {
            return Err(ArtifactError(format!("bad magic (want {ARTIFACT_MAGIC})")));
        }
        let key: StoreKey = take_line(&mut rest, "key: ")?
            .parse()
            .map_err(ArtifactError)?;
        let level = take_line(&mut rest, "level: ")?.to_string();
        let int = |s: &str| -> Result<u64, ArtifactError> {
            s.parse()
                .map_err(|_| ArtifactError(format!("malformed counter `{s}`")))
        };
        let counters = ArtifactCounters {
            work: int(take_line(&mut rest, "work: ")?)?,
            iterations: int(take_line(&mut rest, "iterations: ")?)?,
            candidates: int(take_line(&mut rest, "candidates: ")?)?,
            duplications: int(take_line(&mut rest, "duplications: ")?)?,
            final_size: int(take_line(&mut rest, "final_size: ")?)?,
        };
        let classes_len = int(take_line(&mut rest, "classes-bytes: ")?)? as usize;
        let ir_len = int(take_line(&mut rest, "ir-bytes: ")?)? as usize;
        if rest.len() != classes_len + ir_len {
            return Err(ArtifactError(format!(
                "body is {} bytes, header promises {} + {}",
                rest.len(),
                classes_len,
                ir_len
            )));
        }
        if !rest.is_char_boundary(classes_len) {
            return Err(ArtifactError(
                "classes/ir split is not UTF-8 aligned".into(),
            ));
        }
        let (classes, ir) = rest.split_at(classes_len);
        Ok(CompiledArtifact {
            key,
            level,
            classes: classes.to_string(),
            ir: ir.to_string(),
            counters,
        })
    }

    /// Semantic verification: the stored text must parse back into a
    /// graph that passes the IR verifier. The checksum footer catches
    /// bit rot; this catches entries that were structurally intact but
    /// semantically wrong (or written by a buggy producer) — both end
    /// in quarantine, never in a served response.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] describing the parse or
    /// verification failure.
    pub fn verify(&self) -> Result<Graph, ArtifactError> {
        let mut module_text = String::with_capacity(self.classes.len() + self.ir.len() + 1);
        module_text.push_str(&self.classes);
        module_text.push_str(&self.ir);
        let mut module = parse_module(&module_text)
            .map_err(|e| ArtifactError(format!("stored IR does not parse: {e}")))?;
        if module.graphs.len() != 1 {
            return Err(ArtifactError(format!(
                "expected exactly one graph, found {}",
                module.graphs.len()
            )));
        }
        let g = module.graphs.remove(0);
        dbds_ir::verify(&g)
            .map_err(|e| ArtifactError(format!("stored IR fails verification: {}", e.summary())))?;
        Ok(g)
    }
}

/// Splits the next `\n`-terminated line off `*rest` and strips
/// `prefix` from it.
fn take_line<'a>(rest: &mut &'a str, prefix: &str) -> Result<&'a str, ArtifactError> {
    let nl = rest
        .find('\n')
        .ok_or_else(|| ArtifactError(format!("missing `{prefix}` line")))?;
    let (line, tail) = rest.split_at(nl);
    *rest = &tail[1..];
    line.strip_prefix(prefix)
        .ok_or_else(|| ArtifactError(format!("expected `{prefix}…`, got `{line}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_core::{compile, DbdsConfig};
    use dbds_costmodel::CostModel;
    use dbds_ir::{ClassTable, GraphBuilder, Type};
    use std::sync::Arc;

    fn compiled() -> (Graph, PhaseStats, DbdsConfig) {
        let mut b = GraphBuilder::new("af", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let one = b.iconst(1);
        let s = b.add(x, one);
        b.ret(Some(s));
        let mut g = b.finish();
        let cfg = DbdsConfig::default();
        let stats = compile(&mut g, &CostModel::new(), OptLevel::Dbds, &cfg);
        (g, stats, cfg)
    }

    #[test]
    fn serialize_parse_round_trips() {
        let (g, stats, cfg) = compiled();
        let key = StoreKey::compute(&g, &cfg, OptLevel::Dbds);
        let a = CompiledArtifact::from_compiled(key, OptLevel::Dbds, &g, &stats);
        let parsed = CompiledArtifact::parse(&a.serialize()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.serialize(), a.serialize());
    }

    #[test]
    fn verify_accepts_good_and_rejects_tampered_ir() {
        let (g, stats, cfg) = compiled();
        let key = StoreKey::compute(&g, &cfg, OptLevel::Dbds);
        let a = CompiledArtifact::from_compiled(key, OptLevel::Dbds, &g, &stats);
        let back = a.verify().unwrap();
        assert_eq!(print_graph(&back), a.ir);

        let mut bad = a.clone();
        bad.ir = bad.ir.replace("func @af", "func @af(");
        assert!(bad.verify().is_err());
    }

    #[test]
    fn truncated_payload_is_structurally_detected() {
        let (g, stats, cfg) = compiled();
        let key = StoreKey::compute(&g, &cfg, OptLevel::Dbds);
        let a = CompiledArtifact::from_compiled(key, OptLevel::Dbds, &g, &stats);
        let bytes = a.serialize();
        assert!(CompiledArtifact::parse(&bytes[..bytes.len() - 3]).is_err());
        assert!(CompiledArtifact::parse(b"garbage").is_err());
    }
}
