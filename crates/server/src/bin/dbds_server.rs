//! The `dbds-server` daemon binary.
//!
//! ```text
//! dbds_server [--listen ADDR] [--store DIR|mem] [--max-queue N]
//! ```
//!
//! `ADDR` is `host:port` (TCP) or `unix:<path>`. The resolved address
//! is printed as `listening on <addr>` once the daemon is accepting,
//! so scripts can wait for readiness. Compilation thread counts honor
//! `DBDS_SIM_THREADS` / `DBDS_UNIT_THREADS`.

use dbds_server::{serve, ServerConfig, StoreChoice};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dbds-server: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen")?,
            "--store" => {
                let v = value("--store")?;
                cfg.store = if v == "mem" {
                    StoreChoice::Mem
                } else {
                    StoreChoice::Disk(v.into())
                };
            }
            "--max-queue" => {
                cfg.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|_| "--max-queue needs an integer".to_string())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: dbds_server [--listen HOST:PORT|unix:PATH] \
                     [--store DIR|mem] [--max-queue N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let handle = serve(cfg)?;
    println!("listening on {}", handle.addr);
    handle.join();
    println!("shut down");
    Ok(())
}
