//! The `dbds-server` daemon binary.
//!
//! ```text
//! dbds_server [--listen ADDR] [--store DIR|mem] [--max-queue N]
//!             [--shards N] [--dispatchers N] [--store-budget BYTES]
//!             [--tiered]
//! ```
//!
//! `ADDR` is `host:port` (TCP) or `unix:<path>`. The resolved address
//! is printed as `listening on <addr>` once the daemon is accepting,
//! so scripts can wait for readiness. Compilation thread counts honor
//! `DBDS_SIM_THREADS` / `DBDS_UNIT_THREADS`; the dispatcher count
//! honors `DBDS_DISPATCHERS` when the flag is absent.

use dbds_server::{serve, ServerConfig, StoreChoice};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dbds-server: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--listen" => cfg.listen = value("--listen")?,
            "--store" => {
                let v = value("--store")?;
                cfg.store = if v == "mem" {
                    StoreChoice::Mem
                } else {
                    StoreChoice::Disk(v.into())
                };
            }
            "--max-queue" => {
                cfg.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|_| "--max-queue needs an integer".to_string())?;
            }
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--shards needs a positive integer".to_string())?;
            }
            "--dispatchers" => {
                cfg.dispatchers = value("--dispatchers")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| "--dispatchers needs a positive integer".to_string())?;
            }
            "--store-budget" => {
                cfg.store_budget = Some(
                    value("--store-budget")?
                        .parse()
                        .map_err(|_| "--store-budget needs a byte count".to_string())?,
                );
            }
            "--tiered" => cfg.tiered = true,
            "--help" | "-h" => {
                println!(
                    "usage: dbds_server [--listen HOST:PORT|unix:PATH] \
                     [--store DIR|mem] [--max-queue N] [--shards N] \
                     [--dispatchers N] [--store-budget BYTES] [--tiered]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let handle = serve(cfg)?;
    println!("listening on {}", handle.addr);
    handle.join();
    println!("shut down");
    Ok(())
}
