//! The `dbds_client` command-line client.
//!
//! ```text
//! dbds_client ADDR compile (WORKLOAD | --ir FILE) [LEVEL] [--deadline-ms N] [--print-ir]
//! dbds_client ADDR status
//! dbds_client ADDR shutdown
//! dbds_client ADDR session [LEVEL] [--passes N]
//! ```
//!
//! `compile` prints one summary line (`hit`/`miss`, key, counters) and
//! exits 0 on success, 3 on a typed service error (overloaded,
//! deadline exceeded, bad request), 1 on transport problems. `session`
//! replays every built-in workload `--passes` times and prints per-pass
//! hit/miss tallies — the scripted version of the cache-effectiveness
//! experiment.

use dbds_server::{level_from_name, Client, CompileOutcome, CompileRequest, CompileSource};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dbds_client: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> String {
        "usage: dbds_client ADDR (compile WORKLOAD|--ir FILE [LEVEL] [--deadline-ms N] \
         [--print-ir] | status | shutdown | session [LEVEL] [--passes N])"
            .into()
    };
    let (addr, cmd, rest) = match args.as_slice() {
        [addr, cmd, rest @ ..] => (addr, cmd.as_str(), rest),
        _ => return Err(usage()),
    };
    let mut client = Client::connect(addr)?;
    match cmd {
        "status" => {
            print!("{}", client.status()?.pretty());
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server shut down");
            Ok(ExitCode::SUCCESS)
        }
        "compile" => compile(&mut client, rest),
        "session" => session(&mut client, rest),
        _ => Err(usage()),
    }
}

fn parse_compile_args(rest: &[String]) -> Result<(CompileRequest, bool), String> {
    let mut source = None;
    let mut level = dbds_core::OptLevel::Dbds;
    let mut deadline_ms = None;
    let mut print_ir = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ir" => {
                let path = it.next().ok_or("--ir needs a file path")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                source = Some(CompileSource::IrText(text));
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a u64".to_string())?,
                );
            }
            "--print-ir" => print_ir = true,
            other => {
                if let Some(l) = level_from_name(other) {
                    level = l;
                } else if source.is_none() && !other.starts_with('-') {
                    source = Some(CompileSource::Workload(other.to_string()));
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    let source = source.ok_or("compile needs a workload name or --ir FILE")?;
    Ok((
        CompileRequest {
            source,
            level,
            deadline_ms,
        },
        print_ir,
    ))
}

fn report_outcome(outcome: &CompileOutcome, print_ir: bool) -> ExitCode {
    match outcome {
        Ok(served) => {
            let a = &served.artifact;
            println!(
                "{} {} level={} work={} duplications={} final_size={}",
                if served.cached { "hit " } else { "miss" },
                a.key,
                a.level,
                a.counters.work,
                a.counters.duplications,
                a.counters.final_size
            );
            if print_ir {
                print!("{}{}", a.classes, a.ir);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dbds_client: server error: {e}");
            ExitCode::from(3)
        }
    }
}

fn compile(client: &mut Client, rest: &[String]) -> Result<ExitCode, String> {
    let (req, print_ir) = parse_compile_args(rest)?;
    let outcome = client.compile(req)?;
    Ok(report_outcome(&outcome, print_ir))
}

fn session(client: &mut Client, rest: &[String]) -> Result<ExitCode, String> {
    let mut level = dbds_core::OptLevel::Dbds;
    let mut passes = 2usize;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--passes" => {
                passes = it
                    .next()
                    .ok_or("--passes needs a value")?
                    .parse()
                    .map_err(|_| "--passes needs an integer".to_string())?;
            }
            other => {
                level = level_from_name(other).ok_or_else(|| format!("unknown level `{other}`"))?;
            }
        }
    }
    let names: Vec<String> = dbds_workloads::all_workloads()
        .into_iter()
        .map(|w| w.name)
        .collect();
    for pass in 1..=passes {
        let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
        for name in &names {
            let outcome = client.compile(CompileRequest {
                source: CompileSource::Workload(name.clone()),
                level,
                deadline_ms: None,
            })?;
            match outcome {
                Ok(served) if served.cached => hits += 1,
                Ok(_) => misses += 1,
                Err(_) => errors += 1,
            }
        }
        println!(
            "pass {pass}: {} requests, {hits} hits, {misses} misses, {errors} errors",
            names.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}
