//! Deterministic store-fault sweep over the compilation service.
//!
//! For every seeded [`StoreFaultPlan`] (torn write, bit flip on read,
//! injected ENOSPC, writer killed before its atomic rename — each
//! firing both on cold and warm store traffic), the micro suite is
//! served twice through a [`CompileService`] over a fresh on-disk
//! store, and every OK response is byte-compared against a fresh,
//! fault-free compile of the same request. Two fault-free adversarial
//! scenarios ride along: a store whose directory is deleted out from
//! under it, and one whose directory is made read-only.
//!
//! The three guarantees checked (exit status is non-zero on any
//! violation):
//!
//! 1. **0 wrong results** — every served graph is byte-identical to a
//!    fresh compile (or the response is a typed error),
//! 2. **0 panics** — every pass runs to completion under isolation,
//! 3. **every plan fires** — the sweep actually exercised its faults.
//!
//! Stdout is deterministic (no timings, no paths), so CI can compare
//! sweeps across `DBDS_UNIT_THREADS` settings with `cmp`.
//!
//! ```text
//! cargo run --release -p dbds-server --features fault-injection --bin servsim [-- <seed>]
//! ```

use dbds_core::faultinject::{arm_store, disarm_store, StoreFaultPlan};
use dbds_core::{DbdsConfig, OptLevel};
use dbds_server::{
    CompileOutcome, CompileRequest, CompileService, CompileSource, DiskStore, ServiceConfig,
};
use dbds_workloads::Suite;
use std::path::PathBuf;
use std::process::ExitCode;

/// The request corpus: every micro-suite workload at the full DBDS
/// level.
fn corpus() -> Vec<CompileRequest> {
    Suite::Micro
        .workloads()
        .into_iter()
        .map(|w| CompileRequest {
            source: CompileSource::Workload(w.name),
            level: OptLevel::Dbds,
            deadline_ms: None,
        })
        .collect()
}

/// Serves `reqs` once and counts responses that are not byte-identical
/// to the fault-free ground truth (typed errors are allowed, wrong
/// bytes are not).
fn check_pass(
    svc: &mut CompileService,
    reqs: &[CompileRequest],
    truth: &[CompileOutcome],
) -> (u64, u64, u64) {
    let outcomes = svc.compile_batch(reqs);
    let mut served = 0;
    let mut errors = 0;
    let mut wrong = 0;
    for (outcome, expect) in outcomes.iter().zip(truth) {
        match outcome {
            Ok(got) => {
                served += 1;
                let want = expect.as_ref().expect("ground truth compile failed");
                if got.artifact != want.artifact {
                    wrong += 1;
                }
            }
            Err(_) => errors += 1,
        }
    }
    (served, errors, wrong)
}

fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbds-servsim-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_over(dir: &PathBuf) -> CompileService {
    let store = DiskStore::open(dir).expect("open servsim store");
    CompileService::new(
        Box::new(store),
        DbdsConfig::default(),
        ServiceConfig {
            // Keep injected-ENOSPC retries fast and deterministic.
            store_backoff: std::time::Duration::from_millis(0),
            ..ServiceConfig::default()
        },
    )
}

fn counter_line(svc: &mut CompileService) -> String {
    let c = svc.counters();
    let health = svc.store_health();
    format!(
        "hits={} misses={} puts={} quarantined={} store_quarantined={} retries={} degraded={}",
        c.hits, c.misses, c.puts, c.quarantined, health.quarantined, c.retries, c.degraded
    )
}

fn main() -> ExitCode {
    let seed: u64 = match std::env::args().nth(1).map(|s| s.parse()) {
        None => 0xDBD5,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("servsim: error: seed must be a u64");
            return ExitCode::from(2);
        }
    };
    let reqs = corpus();

    // Fault-free ground truth: compile the corpus once with no store at
    // all (a memory store, discarded) — these artifacts are what every
    // faulted response must match byte-for-byte.
    let truth = {
        let mut svc = CompileService::new(
            Box::new(dbds_server::MemStore::new()),
            DbdsConfig::default(),
            ServiceConfig::default(),
        );
        svc.compile_batch(&reqs)
    };

    let mut total_wrong = 0u64;
    let mut total_panics = 0u64;
    let mut unfired = 0u64;

    println!(
        "servsim seed {seed:#x}: {} requests/pass, 2 passes/plan",
        reqs.len()
    );

    for (i, plan) in StoreFaultPlan::sweep(seed).into_iter().enumerate() {
        let dir = fresh_store_dir(&format!("plan{i}"));
        let mut svc = service_over(&dir);
        arm_store(plan.clone());
        let mut pass_lines = Vec::new();
        let mut panicked = false;
        for pass in 1..=2 {
            match dbds_core::isolate(|| check_pass(&mut svc, &reqs, &truth)) {
                Ok((served, errors, wrong)) => {
                    total_wrong += wrong;
                    pass_lines.push(format!(
                        "  pass {pass}: served={served} errors={errors} wrong={wrong}"
                    ));
                }
                Err(_) => {
                    panicked = true;
                    total_panics += 1;
                    pass_lines.push(format!("  pass {pass}: PANIC"));
                }
            }
        }
        let (_hits, fired) = disarm_store();
        if !fired {
            unfired += 1;
        }
        println!(
            "plan {} nth={} fired={} panicked={}",
            plan.kind.name(),
            plan.nth,
            fired,
            panicked
        );
        for line in pass_lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&mut svc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Scenario: the store directory is deleted while the service runs.
    {
        let dir = fresh_store_dir("dead-dir");
        let mut svc = service_over(&dir);
        std::fs::remove_dir_all(&dir).expect("remove store dir");
        let mut lines = Vec::new();
        for pass in 1..=2 {
            match dbds_core::isolate(|| check_pass(&mut svc, &reqs, &truth)) {
                Ok((served, errors, wrong)) => {
                    total_wrong += wrong;
                    lines.push(format!(
                        "  pass {pass}: served={served} errors={errors} wrong={wrong}"
                    ));
                }
                Err(_) => {
                    total_panics += 1;
                    lines.push(format!("  pass {pass}: PANIC"));
                }
            }
        }
        println!("scenario dead-store-dir");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&mut svc));
        let degraded = svc.counters().degraded;
        if degraded == 0 {
            eprintln!("servsim: error: dead-dir scenario never degraded");
            total_wrong += 1;
        }
    }

    // Scenario: the store directory is read-only (puts fail forever).
    {
        let dir = fresh_store_dir("read-only");
        let mut svc = service_over(&dir);
        let mut perms = std::fs::metadata(&dir)
            .expect("stat store dir")
            .permissions();
        use std::os::unix::fs::PermissionsExt as _;
        perms.set_mode(0o555);
        std::fs::set_permissions(&dir, perms).expect("chmod store dir");
        let mut lines = Vec::new();
        for pass in 1..=2 {
            match dbds_core::isolate(|| check_pass(&mut svc, &reqs, &truth)) {
                Ok((served, errors, wrong)) => {
                    total_wrong += wrong;
                    lines.push(format!(
                        "  pass {pass}: served={served} errors={errors} wrong={wrong}"
                    ));
                }
                Err(_) => {
                    total_panics += 1;
                    lines.push(format!("  pass {pass}: PANIC"));
                }
            }
        }
        println!("scenario read-only-store-dir");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&mut svc));
        let mut perms = std::fs::metadata(&dir)
            .expect("stat store dir")
            .permissions();
        perms.set_mode(0o755);
        let _ = std::fs::set_permissions(&dir, perms);
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("servsim: wrong={total_wrong} panics={total_panics} unfired_plans={unfired}");
    if total_wrong == 0 && total_panics == 0 && unfired == 0 {
        println!("servsim: all store-fault scenarios degraded safely");
        ExitCode::SUCCESS
    } else {
        eprintln!("servsim: FAILURE");
        ExitCode::FAILURE
    }
}
