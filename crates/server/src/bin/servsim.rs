//! Deterministic store-fault sweep over the compilation service.
//!
//! For every seeded [`StoreFaultPlan`] (torn write, bit flip on read,
//! injected ENOSPC, writer killed before its atomic rename — each
//! firing both on cold and warm store traffic), the micro suite is
//! served twice through a [`CompileService`] over a fresh on-disk
//! store, and every OK response is byte-compared against a fresh,
//! fault-free compile of the same request. The sweep then repeats
//! shard-targeted over a four-shard store (every fault kind aimed at
//! every shard the corpus actually occupies). Fault-free adversarial
//! scenarios ride along: a store whose directory is deleted out from
//! under it, one whose directory is made read-only, a size-budgeted
//! store squeezed hard enough that every pass evicts, and a tiered
//! (mem-over-disk) store.
//!
//! The three guarantees checked (exit status is non-zero on any
//! violation):
//!
//! 1. **0 wrong results** — every served graph is byte-identical to a
//!    fresh compile (or the response is a typed error),
//! 2. **0 panics** — every pass runs to completion under isolation,
//! 3. **every plan fires** — the sweep actually exercised its faults.
//!
//! Stdout is deterministic (no timings, no paths), so CI can compare
//! sweeps across `DBDS_UNIT_THREADS` settings with `cmp`.
//!
//! ```text
//! cargo run --release -p dbds-server --features fault-injection --bin servsim [-- <seed>]
//! ```

use dbds_core::faultinject::{arm_store, disarm_store, StoreFaultPlan};
use dbds_core::{DbdsConfig, OptLevel};
use dbds_server::{
    BoundedStore, CompileOutcome, CompileRequest, CompileService, CompileSource, CompiledStore,
    DiskStore, MemStore, ServiceConfig, TieredStore,
};
use dbds_workloads::Suite;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The request corpus: every micro-suite workload at the full DBDS
/// level.
fn corpus() -> Vec<CompileRequest> {
    Suite::Micro
        .workloads()
        .into_iter()
        .map(|w| CompileRequest {
            source: CompileSource::Workload(w.name),
            level: OptLevel::Dbds,
            deadline_ms: None,
        })
        .collect()
}

/// Serves `reqs` once and counts responses that are not byte-identical
/// to the fault-free ground truth (typed errors are allowed, wrong
/// bytes are not).
fn check_pass(
    svc: &CompileService,
    reqs: &[CompileRequest],
    truth: &[CompileOutcome],
) -> (u64, u64, u64) {
    let outcomes = svc.compile_batch(reqs);
    let mut served = 0;
    let mut errors = 0;
    let mut wrong = 0;
    for (outcome, expect) in outcomes.iter().zip(truth) {
        match outcome {
            Ok(got) => {
                served += 1;
                let want = expect.as_ref().expect("ground truth compile failed");
                if got.artifact != want.artifact {
                    wrong += 1;
                }
            }
            Err(_) => errors += 1,
        }
    }
    (served, errors, wrong)
}

/// Runs two isolated passes of `reqs` through `svc`, returning the
/// per-pass report lines plus `(wrong, panics)` totals.
fn run_passes(
    svc: &CompileService,
    reqs: &[CompileRequest],
    truth: &[CompileOutcome],
) -> (Vec<String>, u64, u64) {
    let mut lines = Vec::new();
    let mut wrong = 0u64;
    let mut panics = 0u64;
    for pass in 1..=2 {
        match dbds_core::isolate(|| check_pass(svc, reqs, truth)) {
            Ok((served, errors, w)) => {
                wrong += w;
                lines.push(format!(
                    "  pass {pass}: served={served} errors={errors} wrong={w}"
                ));
            }
            Err(_) => {
                panics += 1;
                lines.push(format!("  pass {pass}: PANIC"));
            }
        }
    }
    (lines, wrong, panics)
}

fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbds-servsim-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A [`ServiceConfig`] with retries kept fast and deterministic.
fn sim_config() -> ServiceConfig {
    ServiceConfig {
        // Keep injected-ENOSPC retries fast and deterministic.
        store_backoff: std::time::Duration::from_millis(0),
        ..ServiceConfig::default()
    }
}

fn service_over(dir: &PathBuf) -> CompileService {
    let store = DiskStore::open(dir).expect("open servsim store");
    CompileService::new(Box::new(store), DbdsConfig::default(), sim_config())
}

/// A service over `shards` on-disk shards under `dir`, each optionally
/// wrapped in a [`BoundedStore`] with a per-shard byte `budget`.
fn sharded_service_over(dir: &Path, shards: u32, budget: Option<u64>) -> CompileService {
    let stores = (0..shards)
        .map(|i| {
            let shard_dir = dir.join(format!("shard-{i}"));
            let store: Box<dyn CompiledStore> =
                Box::new(DiskStore::open_shard(&shard_dir, i).expect("open servsim shard"));
            match budget {
                Some(b) => Box::new(BoundedStore::new(store, b).expect("bound servsim shard")),
                None => store,
            }
        })
        .collect();
    CompileService::with_shards(stores, DbdsConfig::default(), sim_config())
}

/// The shards of an `n`-shard store that the corpus actually touches.
/// Targeting only these keeps the shard-targeted sweep's "every plan
/// fires" gate meaningful.
fn occupied_shards(reqs: &[CompileRequest], n: u32) -> Vec<u32> {
    let probe = CompileService::with_shards(
        (0..n)
            .map(|_| Box::new(MemStore::new()) as Box<dyn CompiledStore>)
            .collect(),
        DbdsConfig::default(),
        sim_config(),
    );
    let mut shards: Vec<u32> = reqs.iter().map(|r| probe.shard_for(r) as u32).collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

fn counter_line(svc: &CompileService) -> String {
    let c = svc.counters();
    let health = svc.store_health();
    format!(
        "hits={} misses={} puts={} quarantined={} store_quarantined={} retries={} degraded={} \
         evictions={}",
        c.hits,
        c.misses,
        c.puts,
        c.quarantined,
        health.quarantined,
        c.retries,
        c.degraded,
        health.evictions
    )
}

fn main() -> ExitCode {
    let seed: u64 = match std::env::args().nth(1).map(|s| s.parse()) {
        None => 0xDBD5,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("servsim: error: seed must be a u64");
            return ExitCode::from(2);
        }
    };
    let reqs = corpus();

    // Fault-free ground truth: compile the corpus once with no store at
    // all (a memory store, discarded) — these artifacts are what every
    // faulted response must match byte-for-byte.
    let truth = {
        let svc = CompileService::new(
            Box::new(MemStore::new()),
            DbdsConfig::default(),
            ServiceConfig::default(),
        );
        svc.compile_batch(&reqs)
    };

    let mut total_wrong = 0u64;
    let mut total_panics = 0u64;
    let mut unfired = 0u64;

    println!(
        "servsim seed {seed:#x}: {} requests/pass, 2 passes/plan",
        reqs.len()
    );

    for (i, plan) in StoreFaultPlan::sweep(seed).into_iter().enumerate() {
        let dir = fresh_store_dir(&format!("plan{i}"));
        let svc = service_over(&dir);
        arm_store(plan.clone());
        let (pass_lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        let (_hits, fired) = disarm_store();
        if !fired {
            unfired += 1;
        }
        println!(
            "plan {} nth={} fired={} panicked={}",
            plan.kind.name(),
            plan.nth,
            fired,
            panics > 0
        );
        for line in pass_lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Shard-targeted sweep: every fault kind aimed at every shard of a
    // four-shard store that the corpus actually occupies. Occupancy is a
    // pure function of the request keys, so the plan list (and stdout)
    // is deterministic.
    const SWEEP_SHARDS: u32 = 4;
    let occupied = occupied_shards(&reqs, SWEEP_SHARDS);
    println!(
        "sharded sweep: {SWEEP_SHARDS} shards, occupied {:?}",
        occupied
    );
    for (i, plan) in StoreFaultPlan::sweep_sharded(seed, &occupied)
        .into_iter()
        .enumerate()
    {
        let dir = fresh_store_dir(&format!("shardplan{i}"));
        let svc = sharded_service_over(&dir, SWEEP_SHARDS, None);
        arm_store(plan.clone());
        let (pass_lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        let (_hits, fired) = disarm_store();
        if !fired {
            unfired += 1;
        }
        println!(
            "plan {} shard={} fired={} panicked={}",
            plan.kind.name(),
            plan.shard.unwrap_or(u32::MAX),
            fired,
            panics > 0
        );
        for line in pass_lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Scenario: the store directory is deleted while the service runs.
    {
        let dir = fresh_store_dir("dead-dir");
        let svc = service_over(&dir);
        std::fs::remove_dir_all(&dir).expect("remove store dir");
        let (lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        println!("scenario dead-store-dir");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        let degraded = svc.counters().degraded;
        if degraded == 0 {
            eprintln!("servsim: error: dead-dir scenario never degraded");
            total_wrong += 1;
        }
    }

    // Scenario: the store directory is read-only (puts fail forever).
    {
        let dir = fresh_store_dir("read-only");
        let svc = service_over(&dir);
        let mut perms = std::fs::metadata(&dir)
            .expect("stat store dir")
            .permissions();
        use std::os::unix::fs::PermissionsExt as _;
        perms.set_mode(0o555);
        std::fs::set_permissions(&dir, perms).expect("chmod store dir");
        let (lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        println!("scenario read-only-store-dir");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        let mut perms = std::fs::metadata(&dir)
            .expect("stat store dir")
            .permissions();
        perms.set_mode(0o755);
        let _ = std::fs::set_permissions(&dir, perms);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Scenario: a budget squeezed far below the corpus footprint. Every
    // put is admitted then swept, so the store churns constantly — the
    // service must still serve only byte-correct artifacts, and the
    // eviction counter must prove the policy actually ran.
    {
        let dir = fresh_store_dir("eviction-pressure");
        let svc = sharded_service_over(&dir, SWEEP_SHARDS, Some(1));
        let (lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        println!("scenario eviction-pressure");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        if svc.store_health().evictions == 0 {
            eprintln!("servsim: error: eviction-pressure scenario never evicted");
            total_wrong += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Scenario: a tiered store (memory front over the disk back). The
    // warm pass is served from the front; artifacts must stay
    // byte-identical to the fault-free ground truth.
    {
        let dir = fresh_store_dir("tiered");
        let disk = DiskStore::open(&dir).expect("open tiered back store");
        let svc = CompileService::new(
            Box::new(TieredStore::new(Box::new(disk))),
            DbdsConfig::default(),
            sim_config(),
        );
        let (lines, wrong, panics) = run_passes(&svc, &reqs, &truth);
        total_wrong += wrong;
        total_panics += panics;
        println!("scenario tiered-store");
        for line in lines {
            println!("{line}");
        }
        println!("  {}", counter_line(&svc));
        let warm_hits = svc.counters().hits;
        if warm_hits < reqs.len() as u64 {
            eprintln!("servsim: error: tiered scenario warm pass missed the cache");
            total_wrong += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("servsim: wrong={total_wrong} panics={total_panics} unfired_plans={unfired}");
    if total_wrong == 0 && total_panics == 0 && unfired == 0 {
        println!("servsim: all store-fault scenarios degraded safely");
        ExitCode::SUCCESS
    } else {
        eprintln!("servsim: FAILURE");
        ExitCode::FAILURE
    }
}
