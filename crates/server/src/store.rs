//! The content-addressed compiled-graph store: a swappable backend
//! trait, an in-memory backend, and a crash-safe on-disk backend with
//! checksummed entries, atomic installs and self-healing quarantine.
//!
//! Robustness contract (what the `servsim` sweep proves):
//!
//! - **No torn entry is ever served.** Every on-disk entry carries a
//!   header with its payload length and FNV-1a checksum; a mismatch on
//!   read quarantines the file and reports a miss, never bytes.
//! - **Writes are atomic.** Entries are written to a temp file, synced,
//!   and renamed into place. A crash before the rename loses only the
//!   new entry (the temp file is swept by the next recovery scan); a
//!   crash after the rename leaves a complete, checksummed entry.
//! - **The store is advisory.** Every operation returns a typed
//!   [`StoreError`] instead of panicking; the service layer retries
//!   transient errors and degrades to fresh compilation when the store
//!   stays unavailable. A dead store slows requests down, it never
//!   fails them.

use crate::key::StoreKey;
use dbds_ir::fnv1a;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

#[cfg(feature = "fault-injection")]
use dbds_core::faultinject::{take_store_fault, StoreFault, StoreOp};

/// The header magic of one on-disk entry file.
const ENTRY_MAGIC: &str = "dbds-store-entry-v1";
/// Entry file suffix.
const ENTRY_SUFFIX: &str = ".entry";
/// Temp-file suffix used during atomic installs.
const TMP_SUFFIX: &str = ".tmp";

/// A typed store failure. All store errors are *advisory*: the caller
/// is expected to retry or degrade, never to crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError(pub String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// Liveness/integrity summary of a backend, served in the status
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Entries currently retrievable.
    pub entries: usize,
    /// Entries quarantined since the backend was opened (recovery scan
    /// plus read-time checksum failures).
    pub quarantined: u64,
}

/// The swappable persistence layer of the compilation service.
///
/// Both backends observe identical get/put/evict semantics (gated by
/// the parity proptest in `tests/store_parity.rs`): `get` returns
/// exactly the last successfully `put` payload or `None`, `evict`
/// reports whether an entry existed, and `keys` lists live entries in
/// sorted order. The on-disk backend additionally survives crashes and
/// quarantines corrupt entries instead of serving them.
pub trait CompiledStore: Send {
    /// Stable backend name for reports.
    fn backend(&self) -> &'static str;

    /// Fetches the payload stored under `key`, or `None` when absent
    /// (including when a corrupt entry was quarantined on this read).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer (I/O failure) — *not* for misses or quarantines.
    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError>;

    /// Durably stores `payload` under `key`, replacing any previous
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the payload could not be
    /// installed; the store is left without a *partial* entry either
    /// way (atomic install).
    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError>;

    /// Removes the entry under `key`; `Ok(true)` when one existed.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer.
    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError>;

    /// Lists the keys of live entries, sorted.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer.
    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError>;

    /// Current health snapshot.
    fn health(&mut self) -> StoreHealth;
}

/// The in-memory backend: a sorted map. Fast, crash-oblivious (the
/// cache dies with the process), and the semantic reference model for
/// the parity tests.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: BTreeMap<StoreKey, Vec<u8>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl CompiledStore for MemStore {
    fn backend(&self) -> &'static str {
        "mem"
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.entries.get(key).cloned())
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        self.entries.insert(*key, payload.to_vec());
        Ok(())
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        Ok(self.entries.remove(key).is_some())
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        Ok(self.entries.keys().copied().collect())
    }

    fn health(&mut self) -> StoreHealth {
        StoreHealth {
            entries: self.entries.len(),
            quarantined: 0,
        }
    }
}

/// The crash-safe on-disk backend: one checksummed file per entry,
/// atomic temp-file-plus-rename installs, and a recovery scan that
/// sweeps stray temp files and quarantines corrupt entries on open.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    quarantined: u64,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `dir` and runs the
    /// recovery scan: stray temp files from writers that died
    /// mid-install are deleted, and every entry whose header or
    /// checksum does not validate is moved into `dir/quarantine/`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory cannot be created
    /// or scanned at all.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError(format!("create {dir:?}: {e}")))?;
        let mut store = DiskStore {
            dir,
            quarantined: 0,
        };
        store.recover()?;
        Ok(store)
    }

    /// The recovery scan (also safe to run on a live store).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory cannot be listed.
    pub fn recover(&mut self) -> Result<(), StoreError> {
        for name in self.dir_entries()? {
            let path = self.dir.join(&name);
            if name.contains(TMP_SUFFIX) {
                // A writer died between write and rename: the entry was
                // never installed, the temp file is garbage.
                let _ = fs::remove_file(&path);
                continue;
            }
            let Some(stem) = name.strip_suffix(ENTRY_SUFFIX) else {
                continue;
            };
            let valid =
                stem.parse::<StoreKey>().is_ok() && matches!(read_entry_file(&path), Ok(Some(_)));
            if !valid {
                self.quarantine(&name);
            }
        }
        Ok(())
    }

    fn dir_entries(&self) -> Result<Vec<String>, StoreError> {
        let rd = fs::read_dir(&self.dir).map_err(|e| StoreError(format!("read dir: {e}")))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| StoreError(format!("read dir entry: {e}")))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!("{key}{ENTRY_SUFFIX}"))
    }

    /// Moves a corrupt entry out of the serving namespace (into
    /// `quarantine/`) so it can be inspected but never served again;
    /// falls back to deletion when even the move fails.
    fn quarantine(&mut self, name: &str) {
        self.quarantined += 1;
        let from = self.dir.join(name);
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(&from, qdir.join(name)))
            .is_ok();
        if !moved {
            let _ = fs::remove_file(&from);
        }
    }
}

/// Reads and validates one entry file: `Ok(Some(payload))` when intact,
/// `Ok(None)` when structurally corrupt (bad magic, length mismatch,
/// checksum mismatch), `Err` when unreadable.
fn read_entry_file(path: &Path) -> Result<Option<Vec<u8>>, String> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("open {path:?}: {e}"))?;
    // Bit-flip-on-read fault: media corruption between disk and reader.
    #[cfg(feature = "fault-injection")]
    if !bytes.is_empty() && take_store_fault(StoreOp::Get) == Some(StoreFault::BitFlipRead) {
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return Ok(None);
    };
    let Ok(header) = std::str::from_utf8(&bytes[..nl]) else {
        return Ok(None);
    };
    let mut parts = header.split(' ');
    if parts.next() != Some(ENTRY_MAGIC) {
        return Ok(None);
    }
    let (Some(len), Some(sum)) = (
        parts.next().and_then(|v| v.parse::<usize>().ok()),
        parts.next().and_then(|v| u64::from_str_radix(v, 16).ok()),
    ) else {
        return Ok(None);
    };
    let payload = &bytes[nl + 1..];
    if payload.len() != len || fnv1a(payload) != sum {
        return Ok(None);
    }
    Ok(Some(payload.to_vec()))
}

impl CompiledStore for DiskStore {
    fn backend(&self) -> &'static str {
        "disk"
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.entry_path(key);
        if !path.exists() {
            return Ok(None);
        }
        match read_entry_file(&path) {
            Ok(Some(payload)) => Ok(Some(payload)),
            Ok(None) => {
                // Corrupt: heal by quarantine + miss; the service
                // recomputes and re-puts.
                self.quarantine(&format!("{key}{ENTRY_SUFFIX}"));
                Ok(None)
            }
            Err(e) => Err(StoreError(e)),
        }
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        #[cfg(feature = "fault-injection")]
        let fault = take_store_fault(StoreOp::Put);
        #[cfg(not(feature = "fault-injection"))]
        let fault: Option<()> = None;

        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::Enospc) {
            return Err(StoreError(
                "no space left on device (injected ENOSPC)".into(),
            ));
        }

        let mut file_bytes =
            format!("{ENTRY_MAGIC} {} {:016x}\n", payload.len(), fnv1a(payload)).into_bytes();
        file_bytes.extend_from_slice(payload);

        // Torn write: the file is cut short mid-payload but still
        // renamed into place — the checksum can no longer match, which
        // is exactly what the read path must catch.
        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::TornWrite) {
            file_bytes.truncate(file_bytes.len() - payload.len() / 2 - 1);
        }

        let tmp = self
            .dir
            .join(format!("{key}{TMP_SUFFIX}{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&file_bytes)?;
            f.sync_all()
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError(format!("write {tmp:?}: {e}"))
        })?;

        // Kill-during-write: the writer dies after the temp file hits
        // disk but before the atomic rename. Nobody observes an error
        // (the process is gone); the entry simply never appears and the
        // stray temp file waits for the next recovery scan.
        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::AbortBeforeRename) {
            return Ok(());
        }
        let _ = fault; // non-fault builds: no injection sites

        fs::rename(&tmp, self.entry_path(key)).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError(format!("rename into place: {e}"))
        })
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.entry_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError(format!("evict: {e}"))),
        }
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        let mut keys = Vec::new();
        for name in self.dir_entries()? {
            if let Some(stem) = name.strip_suffix(ENTRY_SUFFIX) {
                if let Ok(key) = stem.parse::<StoreKey>() {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn health(&mut self) -> StoreHealth {
        StoreHealth {
            entries: self.keys().map_or(0, |k| k.len()),
            quarantined: self.quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dbds-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> StoreKey {
        StoreKey {
            graph: n,
            config: n,
        }
    }

    #[test]
    fn disk_put_get_evict_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), None);
        s.put(&key(1), b"hello artifact").unwrap();
        assert_eq!(
            s.get(&key(1)).unwrap().as_deref(),
            Some(&b"hello artifact"[..])
        );
        s.put(&key(1), b"replaced").unwrap();
        assert_eq!(s.get(&key(1)).unwrap().as_deref(), Some(&b"replaced"[..]));
        assert_eq!(s.keys().unwrap(), vec![key(1)]);
        assert!(s.evict(&key(1)).unwrap());
        assert!(!s.evict(&key(1)).unwrap());
        assert_eq!(s.get(&key(1)).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let dir = tmpdir("corrupt");
        let mut s = DiskStore::open(&dir).unwrap();
        s.put(&key(2), b"payload bytes").unwrap();
        // Flip a payload byte behind the store's back.
        let path = dir.join(format!("{}{ENTRY_SUFFIX}", key(2)));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(s.get(&key(2)).unwrap(), None, "corrupt entry served");
        assert_eq!(s.health().quarantined, 1);
        assert!(dir
            .join("quarantine")
            .join(format!("{}{ENTRY_SUFFIX}", key(2)))
            .exists());
        // Healed: a re-put serves again.
        s.put(&key(2), b"payload bytes").unwrap();
        assert!(s.get(&key(2)).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_sweeps_tmp_files_and_quarantines_corrupt_entries() {
        let dir = tmpdir("recover");
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.put(&key(3), b"survives").unwrap();
        }
        // Crash leftovers: a stray temp file and a truncated entry.
        fs::write(dir.join(format!("{}{TMP_SUFFIX}999", key(4))), b"partial").unwrap();
        fs::write(
            dir.join(format!("{}{ENTRY_SUFFIX}", key(5))),
            b"dbds-store-entry-v1 99 0\ntrunc",
        )
        .unwrap();

        let mut s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(&key(3)).unwrap().as_deref(), Some(&b"survives"[..]));
        assert_eq!(s.get(&key(4)).unwrap(), None);
        assert_eq!(s.get(&key(5)).unwrap(), None);
        assert_eq!(s.health().quarantined, 1, "truncated entry quarantined");
        assert_eq!(s.keys().unwrap(), vec![key(3)]);
        assert!(!dir.join(format!("{}{TMP_SUFFIX}999", key(4))).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_dir_reports_errors_not_panics() {
        let dir = tmpdir("dead");
        let mut s = DiskStore::open(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert!(s.put(&key(6), b"x").is_err());
        assert!(s.keys().is_err());
        // A get of an absent entry is a clean miss even with the dir gone.
        assert_eq!(s.get(&key(6)).unwrap(), None);
    }

    #[test]
    fn mem_and_disk_agree_on_a_simple_script() {
        let dir = tmpdir("agree");
        let mut mem = MemStore::new();
        let mut disk = DiskStore::open(&dir).unwrap();
        for s in [&mut mem as &mut dyn CompiledStore, &mut disk] {
            s.put(&key(7), b"a").unwrap();
            s.put(&key(8), b"b").unwrap();
            s.evict(&key(7)).unwrap();
        }
        assert_eq!(mem.keys().unwrap(), disk.keys().unwrap());
        assert_eq!(mem.get(&key(8)).unwrap(), disk.get(&key(8)).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }
}
