//! The content-addressed compiled-graph store: a swappable backend
//! trait, an in-memory backend, and a crash-safe on-disk backend with
//! checksummed entries, atomic installs and self-healing quarantine.
//!
//! Robustness contract (what the `servsim` sweep proves):
//!
//! - **No torn entry is ever served.** Every on-disk entry carries a
//!   header with its payload length and FNV-1a checksum; a mismatch on
//!   read quarantines the file and reports a miss, never bytes.
//! - **Writes are atomic.** Entries are written to a temp file, synced,
//!   and renamed into place. A crash before the rename loses only the
//!   new entry (the temp file is swept by the next recovery scan); a
//!   crash after the rename leaves a complete, checksummed entry.
//! - **The store is advisory.** Every operation returns a typed
//!   [`StoreError`] instead of panicking; the service layer retries
//!   transient errors and degrades to fresh compilation when the store
//!   stays unavailable. A dead store slows requests down, it never
//!   fails them.

use crate::key::StoreKey;
use dbds_ir::fnv1a;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

#[cfg(feature = "fault-injection")]
use dbds_core::faultinject::{take_store_fault, StoreFault, StoreOp};

/// The header magic of one on-disk entry file.
const ENTRY_MAGIC: &str = "dbds-store-entry-v1";
/// Entry file suffix.
const ENTRY_SUFFIX: &str = ".entry";
/// Temp-file suffix used during atomic installs.
const TMP_SUFFIX: &str = ".tmp";

/// A typed store failure. All store errors are *advisory*: the caller
/// is expected to retry or degrade, never to crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreError(pub String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

/// Liveness/integrity summary of a backend, served in the status
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Entries currently retrievable.
    pub entries: usize,
    /// Entries quarantined since the backend was opened (recovery scan
    /// plus read-time checksum failures).
    pub quarantined: u64,
    /// Entries evicted by a size budget (see [`BoundedStore`]) since
    /// the backend was opened. Explicit `evict` calls do not count.
    pub evictions: u64,
}

/// The swappable persistence layer of the compilation service.
///
/// Both backends observe identical get/put/evict semantics (gated by
/// the parity proptest in `tests/store_parity.rs`): `get` returns
/// exactly the last successfully `put` payload or `None`, `evict`
/// reports whether an entry existed, and `keys` lists live entries in
/// sorted order. The on-disk backend additionally survives crashes and
/// quarantines corrupt entries instead of serving them.
pub trait CompiledStore: Send {
    /// Stable backend name for reports.
    fn backend(&self) -> &'static str;

    /// Fetches the payload stored under `key`, or `None` when absent
    /// (including when a corrupt entry was quarantined on this read).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer (I/O failure) — *not* for misses or quarantines.
    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError>;

    /// Durably stores `payload` under `key`, replacing any previous
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the payload could not be
    /// installed; the store is left without a *partial* entry either
    /// way (atomic install).
    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError>;

    /// Removes the entry under `key`; `Ok(true)` when one existed.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer.
    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError>;

    /// Lists the keys of live entries, sorted.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the backend cannot currently
    /// answer.
    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError>;

    /// Current health snapshot.
    fn health(&mut self) -> StoreHealth;
}

/// The in-memory backend: a sorted map. Fast, crash-oblivious (the
/// cache dies with the process), and the semantic reference model for
/// the parity tests.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: BTreeMap<StoreKey, Vec<u8>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl CompiledStore for MemStore {
    fn backend(&self) -> &'static str {
        "mem"
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.entries.get(key).cloned())
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        self.entries.insert(*key, payload.to_vec());
        Ok(())
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        Ok(self.entries.remove(key).is_some())
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        Ok(self.entries.keys().copied().collect())
    }

    fn health(&mut self) -> StoreHealth {
        StoreHealth {
            entries: self.entries.len(),
            quarantined: 0,
            evictions: 0,
        }
    }
}

/// The crash-safe on-disk backend: one checksummed file per entry,
/// atomic temp-file-plus-rename installs, and a recovery scan that
/// sweeps stray temp files and quarantines corrupt entries on open.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    quarantined: u64,
    /// The shard this backend serves in a sharded store (0 for
    /// unsharded stores); identifies the backend to the shard-targeted
    /// fault-injection sites.
    shard: u32,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `dir` and runs the
    /// recovery scan: stray temp files from writers that died
    /// mid-install are deleted, and every entry whose header or
    /// checksum does not validate is moved into `dir/quarantine/`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory cannot be created
    /// or scanned at all.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskStore, StoreError> {
        DiskStore::open_shard(dir, 0)
    }

    /// [`DiskStore::open`] for shard `shard` of a sharded store: same
    /// behaviour, but store-fault injection sites see the shard id.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory cannot be created
    /// or scanned at all.
    pub fn open_shard(dir: impl Into<PathBuf>, shard: u32) -> Result<DiskStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError(format!("create {dir:?}: {e}")))?;
        let mut store = DiskStore {
            dir,
            quarantined: 0,
            shard,
        };
        store.recover()?;
        Ok(store)
    }

    /// The recovery scan (also safe to run on a live store).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory cannot be listed.
    pub fn recover(&mut self) -> Result<(), StoreError> {
        for name in self.dir_entries()? {
            let path = self.dir.join(&name);
            if name.contains(TMP_SUFFIX) {
                // A writer died between write and rename: the entry was
                // never installed, the temp file is garbage.
                let _ = fs::remove_file(&path);
                continue;
            }
            let Some(stem) = name.strip_suffix(ENTRY_SUFFIX) else {
                continue;
            };
            let valid = stem.parse::<StoreKey>().is_ok()
                && matches!(read_entry_file(&path, self.shard), Ok(Some(_)));
            if !valid {
                self.quarantine(&name);
            }
        }
        Ok(())
    }

    fn dir_entries(&self) -> Result<Vec<String>, StoreError> {
        let rd = fs::read_dir(&self.dir).map_err(|e| StoreError(format!("read dir: {e}")))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| StoreError(format!("read dir entry: {e}")))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!("{key}{ENTRY_SUFFIX}"))
    }

    /// Moves a corrupt entry out of the serving namespace (into
    /// `quarantine/`) so it can be inspected but never served again;
    /// falls back to deletion when even the move fails.
    fn quarantine(&mut self, name: &str) {
        self.quarantined += 1;
        let from = self.dir.join(name);
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(&from, qdir.join(name)))
            .is_ok();
        if !moved {
            let _ = fs::remove_file(&from);
        }
    }
}

/// Reads and validates one entry file: `Ok(Some(payload))` when intact,
/// `Ok(None)` when structurally corrupt (bad magic, length mismatch,
/// checksum mismatch), `Err` when unreadable.
fn read_entry_file(path: &Path, shard: u32) -> Result<Option<Vec<u8>>, String> {
    #[cfg(not(feature = "fault-injection"))]
    let _ = shard;
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("open {path:?}: {e}"))?;
    // Bit-flip-on-read fault: media corruption between disk and reader.
    #[cfg(feature = "fault-injection")]
    if !bytes.is_empty() && take_store_fault(StoreOp::Get, shard) == Some(StoreFault::BitFlipRead) {
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return Ok(None);
    };
    let Ok(header) = std::str::from_utf8(&bytes[..nl]) else {
        return Ok(None);
    };
    let mut parts = header.split(' ');
    if parts.next() != Some(ENTRY_MAGIC) {
        return Ok(None);
    }
    let (Some(len), Some(sum)) = (
        parts.next().and_then(|v| v.parse::<usize>().ok()),
        parts.next().and_then(|v| u64::from_str_radix(v, 16).ok()),
    ) else {
        return Ok(None);
    };
    let payload = &bytes[nl + 1..];
    if payload.len() != len || fnv1a(payload) != sum {
        return Ok(None);
    }
    Ok(Some(payload.to_vec()))
}

impl CompiledStore for DiskStore {
    fn backend(&self) -> &'static str {
        "disk"
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.entry_path(key);
        if !path.exists() {
            return Ok(None);
        }
        match read_entry_file(&path, self.shard) {
            Ok(Some(payload)) => Ok(Some(payload)),
            Ok(None) => {
                // Corrupt: heal by quarantine + miss; the service
                // recomputes and re-puts.
                self.quarantine(&format!("{key}{ENTRY_SUFFIX}"));
                Ok(None)
            }
            Err(e) => Err(StoreError(e)),
        }
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        #[cfg(feature = "fault-injection")]
        let fault = take_store_fault(StoreOp::Put, self.shard);
        #[cfg(not(feature = "fault-injection"))]
        let fault: Option<()> = None;

        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::Enospc) {
            return Err(StoreError(
                "no space left on device (injected ENOSPC)".into(),
            ));
        }

        let mut file_bytes =
            format!("{ENTRY_MAGIC} {} {:016x}\n", payload.len(), fnv1a(payload)).into_bytes();
        file_bytes.extend_from_slice(payload);

        // Torn write: the file is cut short mid-payload but still
        // renamed into place — the checksum can no longer match, which
        // is exactly what the read path must catch.
        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::TornWrite) {
            file_bytes.truncate(file_bytes.len() - payload.len() / 2 - 1);
        }

        let tmp = self
            .dir
            .join(format!("{key}{TMP_SUFFIX}{}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&file_bytes)?;
            f.sync_all()
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError(format!("write {tmp:?}: {e}"))
        })?;

        // Kill-during-write: the writer dies after the temp file hits
        // disk but before the atomic rename. Nobody observes an error
        // (the process is gone); the entry simply never appears and the
        // stray temp file waits for the next recovery scan.
        #[cfg(feature = "fault-injection")]
        if fault == Some(StoreFault::AbortBeforeRename) {
            return Ok(());
        }
        let _ = fault; // non-fault builds: no injection sites

        fs::rename(&tmp, self.entry_path(key)).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError(format!("rename into place: {e}"))
        })
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.entry_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError(format!("evict: {e}"))),
        }
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        let mut keys = Vec::new();
        for name in self.dir_entries()? {
            if let Some(stem) = name.strip_suffix(ENTRY_SUFFIX) {
                if let Ok(key) = stem.parse::<StoreKey>() {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn health(&mut self) -> StoreHealth {
        StoreHealth {
            entries: self.keys().map_or(0, |k| k.len()),
            quarantined: self.quarantined,
            evictions: 0,
        }
    }
}

/// A size-budgeted wrapper around any backend: keeps the sum of stored
/// payload bytes at or below `budget` by evicting entries with a
/// second-chance (clock) sweep over per-entry last-hit bits.
///
/// Determinism: the clock ring is ordered by insertion, seeded from the
/// inner backend's *sorted* key list on open, and advanced only by
/// get/put calls — so the eviction sequence is a pure function of the
/// operation sequence, independent of wall-clock time or thread count.
/// The budget is strict: an entry larger than the whole budget is
/// admitted durably and then evicted by the very next sweep, which
/// keeps the arithmetic simple and still bounds the steady state.
///
/// Like every store, the wrapper is advisory: when the inner backend
/// cannot evict (e.g. a read-only directory), the sweep stops and the
/// store temporarily exceeds its budget rather than failing requests.
pub struct BoundedStore {
    inner: Box<dyn CompiledStore>,
    budget: u64,
    /// Clock ring in insertion order; `hand` indexes the next victim
    /// candidate.
    ring: Vec<StoreKey>,
    hand: usize,
    /// Payload size and second-chance bit per live entry.
    tracked: BTreeMap<StoreKey, (u64, bool)>,
    total: u64,
    evictions: u64,
}

impl BoundedStore {
    /// Wraps `inner` under a byte `budget`, seeding the clock from the
    /// inner store's current (sorted) keys and immediately enforcing
    /// the budget against pre-existing entries.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the inner store cannot list or
    /// read its entries during seeding.
    pub fn new(inner: Box<dyn CompiledStore>, budget: u64) -> Result<BoundedStore, StoreError> {
        let mut store = BoundedStore {
            inner,
            budget,
            ring: Vec::new(),
            hand: 0,
            tracked: BTreeMap::new(),
            total: 0,
            evictions: 0,
        };
        for key in store.inner.keys()? {
            if let Some(payload) = store.inner.get(&key)? {
                store.track(key, payload.len() as u64);
            }
        }
        store.enforce();
        Ok(store)
    }

    fn track(&mut self, key: StoreKey, size: u64) {
        match self.tracked.insert(key, (size, false)) {
            Some((old, _)) => self.total = self.total - old + size,
            None => {
                self.total += size;
                self.ring.push(key);
            }
        }
    }

    fn untrack(&mut self, key: &StoreKey) {
        if let Some((size, _)) = self.tracked.remove(key) {
            self.total -= size;
            if let Some(pos) = self.ring.iter().position(|k| k == key) {
                self.ring.remove(pos);
                if pos < self.hand {
                    self.hand -= 1;
                }
            }
        }
    }

    /// The clock sweep: while over budget, clear-and-skip referenced
    /// entries, evict unreferenced ones. Every visit either clears a
    /// bit or removes an entry, so the sweep terminates.
    fn enforce(&mut self) {
        while self.total > self.budget && !self.ring.is_empty() {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            let referenced = self
                .tracked
                .get_mut(&key)
                .map(|entry| std::mem::take(&mut entry.1))
                .unwrap_or(false);
            if referenced {
                self.hand += 1;
            } else if self.inner.evict(&key).is_ok() {
                self.evictions += 1;
                self.untrack(&key);
            } else {
                // Advisory: the backend cannot evict right now; stop
                // rather than fail the request that triggered us.
                break;
            }
        }
    }
}

impl fmt::Debug for BoundedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedStore")
            .field("backend", &self.inner.backend())
            .field("budget", &self.budget)
            .field("total", &self.total)
            .field("evictions", &self.evictions)
            .finish_non_exhaustive()
    }
}

impl CompiledStore for BoundedStore {
    fn backend(&self) -> &'static str {
        self.inner.backend()
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        let out = self.inner.get(key)?;
        match &out {
            Some(payload) => match self.tracked.get_mut(key) {
                Some(entry) => entry.1 = true,
                // An entry appeared behind our back (shared dir):
                // adopt it so the budget stays honest.
                None => {
                    self.track(*key, payload.len() as u64);
                    self.enforce();
                }
            },
            // The inner store lost the entry (e.g. quarantined it on
            // this read): release its budget share.
            None => self.untrack(key),
        }
        Ok(out)
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        self.inner.put(key, payload)?;
        self.track(*key, payload.len() as u64);
        self.enforce();
        Ok(())
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        let existed = self.inner.evict(key)?;
        self.untrack(key);
        Ok(existed)
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        self.inner.keys()
    }

    fn health(&mut self) -> StoreHealth {
        let mut health = self.inner.health();
        health.evictions += self.evictions;
        health
    }
}

/// A tiered read path: an in-memory front cache over a durable back
/// store. Writes go through to the back first (durability), then fill
/// the front; reads hit the front and fall back to the back, filling
/// the front on the way out. The back's heal path is untouched — the
/// front only ever holds bytes the back served intact, so the front is
/// always a subset of the back's live entries.
pub struct TieredStore {
    front: MemStore,
    back: Box<dyn CompiledStore>,
}

impl TieredStore {
    /// Puts a fresh in-memory front in front of `back`.
    pub fn new(back: Box<dyn CompiledStore>) -> TieredStore {
        TieredStore {
            front: MemStore::new(),
            back,
        }
    }
}

impl fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TieredStore")
            .field("front", &self.front)
            .field("back", &self.back.backend())
            .finish_non_exhaustive()
    }
}

impl CompiledStore for TieredStore {
    fn backend(&self) -> &'static str {
        "tiered"
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(payload) = self.front.get(key)? {
            return Ok(Some(payload));
        }
        let out = self.back.get(key)?;
        if let Some(payload) = &out {
            self.front.put(key, payload)?;
        }
        Ok(out)
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        self.back.put(key, payload)?;
        self.front.put(key, payload)
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        let in_front = self.front.evict(key)?;
        Ok(self.back.evict(key)? || in_front)
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        self.back.keys()
    }

    fn health(&mut self) -> StoreHealth {
        self.back.health()
    }
}

/// A key-prefix-routed composite: requests go to the shard chosen by
/// [`StoreKey::shard`], so each underlying backend serves a disjoint,
/// stable slice of the key space. With any shard count the composite is
/// observably identical to a single store fed the same operations
/// (gated by `tests/shard_parity.rs`) — the shards only partition the
/// data, they never change what a get observes.
pub struct ShardedStore {
    shards: Vec<Box<dyn CompiledStore>>,
}

impl ShardedStore {
    /// Builds the composite over `shards` backends (at least one).
    pub fn new(shards: Vec<Box<dyn CompiledStore>>) -> ShardedStore {
        assert!(!shards.is_empty(), "a sharded store needs >= 1 shard");
        ShardedStore { shards }
    }

    fn route(&mut self, key: &StoreKey) -> &mut Box<dyn CompiledStore> {
        let i = key.shard(self.shards.len());
        &mut self.shards[i]
    }
}

impl fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl CompiledStore for ShardedStore {
    fn backend(&self) -> &'static str {
        self.shards[0].backend()
    }

    fn get(&mut self, key: &StoreKey) -> Result<Option<Vec<u8>>, StoreError> {
        self.route(key).get(key)
    }

    fn put(&mut self, key: &StoreKey, payload: &[u8]) -> Result<(), StoreError> {
        self.route(key).put(key, payload)
    }

    fn evict(&mut self, key: &StoreKey) -> Result<bool, StoreError> {
        self.route(key).evict(key)
    }

    fn keys(&mut self) -> Result<Vec<StoreKey>, StoreError> {
        let mut keys = Vec::new();
        for shard in &mut self.shards {
            keys.extend(shard.keys()?);
        }
        keys.sort();
        Ok(keys)
    }

    fn health(&mut self) -> StoreHealth {
        let mut total = StoreHealth::default();
        for shard in &mut self.shards {
            let health = shard.health();
            total.entries += health.entries;
            total.quarantined += health.quarantined;
            total.evictions += health.evictions;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dbds-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> StoreKey {
        StoreKey {
            graph: n,
            config: n,
        }
    }

    #[test]
    fn disk_put_get_evict_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), None);
        s.put(&key(1), b"hello artifact").unwrap();
        assert_eq!(
            s.get(&key(1)).unwrap().as_deref(),
            Some(&b"hello artifact"[..])
        );
        s.put(&key(1), b"replaced").unwrap();
        assert_eq!(s.get(&key(1)).unwrap().as_deref(), Some(&b"replaced"[..]));
        assert_eq!(s.keys().unwrap(), vec![key(1)]);
        assert!(s.evict(&key(1)).unwrap());
        assert!(!s.evict(&key(1)).unwrap());
        assert_eq!(s.get(&key(1)).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let dir = tmpdir("corrupt");
        let mut s = DiskStore::open(&dir).unwrap();
        s.put(&key(2), b"payload bytes").unwrap();
        // Flip a payload byte behind the store's back.
        let path = dir.join(format!("{}{ENTRY_SUFFIX}", key(2)));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(s.get(&key(2)).unwrap(), None, "corrupt entry served");
        assert_eq!(s.health().quarantined, 1);
        assert!(dir
            .join("quarantine")
            .join(format!("{}{ENTRY_SUFFIX}", key(2)))
            .exists());
        // Healed: a re-put serves again.
        s.put(&key(2), b"payload bytes").unwrap();
        assert!(s.get(&key(2)).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_sweeps_tmp_files_and_quarantines_corrupt_entries() {
        let dir = tmpdir("recover");
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.put(&key(3), b"survives").unwrap();
        }
        // Crash leftovers: a stray temp file and a truncated entry.
        fs::write(dir.join(format!("{}{TMP_SUFFIX}999", key(4))), b"partial").unwrap();
        fs::write(
            dir.join(format!("{}{ENTRY_SUFFIX}", key(5))),
            b"dbds-store-entry-v1 99 0\ntrunc",
        )
        .unwrap();

        let mut s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(&key(3)).unwrap().as_deref(), Some(&b"survives"[..]));
        assert_eq!(s.get(&key(4)).unwrap(), None);
        assert_eq!(s.get(&key(5)).unwrap(), None);
        assert_eq!(s.health().quarantined, 1, "truncated entry quarantined");
        assert_eq!(s.keys().unwrap(), vec![key(3)]);
        assert!(!dir.join(format!("{}{TMP_SUFFIX}999", key(4))).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_dir_reports_errors_not_panics() {
        let dir = tmpdir("dead");
        let mut s = DiskStore::open(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert!(s.put(&key(6), b"x").is_err());
        assert!(s.keys().is_err());
        // A get of an absent entry is a clean miss even with the dir gone.
        assert_eq!(s.get(&key(6)).unwrap(), None);
    }

    #[test]
    fn recovery_quarantines_non_canonically_named_entries() {
        let dir = tmpdir("noncanon");
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.put(&key(0xbeef), b"canonical").unwrap();
        }
        // Plant a structurally valid entry under a non-canonical
        // filename: uppercase hex and a `+`-padded field both parse
        // under from_str_radix and would alias a canonical key.
        let body = b"dbds-store-entry-v1 4 c4bcadba8e631b86\nname";
        fs::write(dir.join("g000000000000BEEF-c0000000000000001.entry"), body).unwrap();
        fs::write(dir.join("g+00000000000beef-c0000000000000001.entry"), body).unwrap();

        let mut s = DiskStore::open(&dir).unwrap();
        assert_eq!(
            s.health().quarantined,
            2,
            "both non-canonical names quarantined"
        );
        assert_eq!(s.keys().unwrap(), vec![key(0xbeef)]);
        assert!(dir
            .join("quarantine")
            .join("g000000000000BEEF-c0000000000000001.entry")
            .exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_store_evicts_by_second_chance_clock() {
        let mut s = BoundedStore::new(Box::new(MemStore::new()), 8).unwrap();
        s.put(&key(1), b"aaaa").unwrap(); // 4 bytes
        s.put(&key(2), b"bbbb").unwrap(); // 8 bytes total: at budget
        assert_eq!(s.health().evictions, 0);

        // Touch key(1): its second-chance bit protects it from the
        // next sweep, so the third put evicts key(2) instead.
        assert!(s.get(&key(1)).unwrap().is_some());
        s.put(&key(3), b"cccc").unwrap();
        assert_eq!(s.health().evictions, 1);
        assert_eq!(s.keys().unwrap(), vec![key(1), key(3)]);

        // The hand rests where the sweep stopped and key(1)'s bit was
        // consumed: the next pressure evicts key(3), still unreferenced.
        s.put(&key(4), b"dddd").unwrap();
        assert_eq!(s.keys().unwrap(), vec![key(1), key(4)]);
        assert_eq!(s.health().evictions, 2);
        assert_eq!(s.health().entries, 2);
    }

    #[test]
    fn bounded_store_admits_then_evicts_oversized_entries() {
        let mut s = BoundedStore::new(Box::new(MemStore::new()), 4).unwrap();
        s.put(&key(1), b"way too large for the budget").unwrap();
        assert_eq!(s.keys().unwrap(), vec![], "over-budget entry swept");
        assert_eq!(s.health().evictions, 1);
    }

    #[test]
    fn bounded_store_seeds_clock_from_reopened_backend() {
        let dir = tmpdir("bounded-reopen");
        {
            let mut s = DiskStore::open(&dir).unwrap();
            s.put(&key(1), b"aaaa").unwrap();
            s.put(&key(2), b"bbbb").unwrap();
        }
        // Reopening under a tighter budget enforces it immediately, in
        // sorted-key ring order.
        let mut s = BoundedStore::new(Box::new(DiskStore::open(&dir).unwrap()), 4).unwrap();
        assert_eq!(s.keys().unwrap(), vec![key(2)]);
        assert_eq!(s.health().evictions, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_store_fills_front_and_writes_through() {
        let dir = tmpdir("tiered");
        let mut s = TieredStore::new(Box::new(DiskStore::open(&dir).unwrap()));
        s.put(&key(1), b"payload").unwrap();
        // The write went through to disk: delete the file behind the
        // store's back and the front still serves.
        let path = dir.join(format!("{}{ENTRY_SUFFIX}", key(1)));
        assert!(path.exists(), "write-through must hit disk");
        fs::remove_file(&path).unwrap();
        assert_eq!(s.get(&key(1)).unwrap().as_deref(), Some(&b"payload"[..]));

        // A fresh tier over the same dir starts cold and falls back to
        // the disk copy, filling the front on the way out.
        let mut s = TieredStore::new(Box::new(DiskStore::open(&dir).unwrap()));
        s.put(&key(2), b"warm me").unwrap();
        let mut cold = TieredStore::new(Box::new(DiskStore::open(&dir).unwrap()));
        assert_eq!(cold.get(&key(2)).unwrap().as_deref(), Some(&b"warm me"[..]));
        assert_eq!(
            cold.front.get(&key(2)).unwrap().as_deref(),
            Some(&b"warm me"[..])
        );
        assert!(s.evict(&key(2)).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_and_disk_agree_on_a_simple_script() {
        let dir = tmpdir("agree");
        let mut mem = MemStore::new();
        let mut disk = DiskStore::open(&dir).unwrap();
        for s in [&mut mem as &mut dyn CompiledStore, &mut disk] {
            s.put(&key(7), b"a").unwrap();
            s.put(&key(8), b"b").unwrap();
            s.evict(&key(7)).unwrap();
        }
        assert_eq!(mem.keys().unwrap(), disk.keys().unwrap());
        assert_eq!(mem.get(&key(8)).unwrap(), disk.get(&key(8)).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }
}
