//! The `dbds-server` daemon: socket listeners, a bounded admission
//! queue with load shedding, and a single dispatcher thread that owns
//! the [`CompileService`].
//!
//! Architecture: connection threads only parse frames and enqueue
//! jobs; every store access and compilation happens on the dispatcher,
//! which drains the queue in batches (so concurrent clients still get
//! the unit-level parallel fan-out of
//! [`CompileService::compile_batch`]). When the queue is full, the
//! connection thread answers `overloaded` immediately — admission
//! control is the one decision made off the dispatcher, which is why
//! the shed counter is a shared atomic folded into the status report.

use crate::json::Json;
use crate::proto::{error_json, read_frame, response_json, write_frame, Request, PROTO_VERSION};
use crate::service::{CompileService, ServiceConfig, ServiceError};
use crate::store::{CompiledStore, DiskStore, MemStore, StoreError};
use dbds_core::DbdsConfig;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// Which store backend the daemon should open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreChoice {
    /// In-memory cache (dies with the daemon).
    Mem,
    /// Crash-safe on-disk store rooted at the given directory.
    Disk(PathBuf),
}

impl StoreChoice {
    /// Opens the chosen backend. A store directory that cannot be
    /// opened degrades to the in-memory backend with a warning on
    /// stderr — a broken cache must not prevent serving.
    pub fn open(&self) -> Box<dyn CompiledStore> {
        match self {
            StoreChoice::Mem => Box::new(MemStore::new()),
            StoreChoice::Disk(dir) => match DiskStore::open(dir) {
                Ok(s) => Box::new(s),
                Err(StoreError(e)) => {
                    eprintln!(
                        "dbds-server: warning: store {} unusable ({e}); \
                         falling back to in-memory cache",
                        dir.display()
                    );
                    Box::new(MemStore::new())
                }
            },
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address: `host:port` for TCP or `unix:<path>` for a Unix
    /// domain socket.
    pub listen: String,
    /// Store backend.
    pub store: StoreChoice,
    /// Compilation configuration (thread counts honor
    /// `DBDS_SIM_THREADS` / `DBDS_UNIT_THREADS` via its default).
    pub base_cfg: DbdsConfig,
    /// Store retry/backoff tuning.
    pub service: ServiceConfig,
    /// Admission-queue bound: jobs beyond this many waiting are shed
    /// with a typed `overloaded` response.
    pub max_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            store: StoreChoice::Mem,
            base_cfg: DbdsConfig::default(),
            service: ServiceConfig::default(),
            max_queue: 128,
        }
    }
}

/// Either listener flavor.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Either stream flavor; the protocol layer only needs `Read + Write`.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One queued unit of dispatcher work.
enum Job {
    Compile {
        req: crate::service::CompileRequest,
        reply: mpsc::Sender<Json>,
    },
    Status {
        reply: mpsc::Sender<Json>,
    },
    Shutdown {
        reply: mpsc::Sender<Json>,
    },
}

/// A running daemon: the resolved listen address plus the thread
/// handles needed to join it.
#[derive(Debug)]
pub struct ServerHandle {
    /// The resolved address clients should connect to (`host:port` or
    /// `unix:<path>`), useful when the config asked for port 0.
    pub addr: String,
    shutdown: Arc<AtomicBool>,
    accept_thread: thread::JoinHandle<()>,
    dispatcher_thread: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Blocks until the daemon has shut down (a client sent
    /// `shutdown`, or [`ServerHandle::stop`] was called).
    pub fn join(self) {
        let _ = self.dispatcher_thread.join();
        let _ = self.accept_thread.join();
    }

    /// Requests shutdown from the hosting process (equivalent to a
    /// client `shutdown` op) and waits for the daemon to stop.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the accept loop out of `accept()`.
        let _ = crate::client::Client::connect(&self.addr);
        self.join();
    }
}

/// Binds the listener and starts the accept + dispatcher threads.
///
/// # Errors
///
/// Returns a message when the listen address cannot be parsed or
/// bound. Store problems do *not* fail startup (see
/// [`StoreChoice::open`]).
pub fn serve(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let (listener, addr) = bind(&cfg.listen)?;
    let service = CompileService::new(cfg.store.open(), cfg.base_cfg.clone(), cfg.service.clone());

    let shutdown = Arc::new(AtomicBool::new(false));
    let depth = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let (tx, rx) = mpsc::channel::<Job>();

    let dispatcher_thread = {
        let shutdown = Arc::clone(&shutdown);
        let depth = Arc::clone(&depth);
        let shed = Arc::clone(&shed);
        let addr = addr.clone();
        thread::Builder::new()
            .name("dbds-dispatcher".into())
            .spawn(move || {
                dispatcher(service, &rx, &shutdown, &depth, &shed);
                // Nudge the accept loop out of its blocking `accept()`
                // so `join()` completes after a client-driven shutdown.
                let _ = crate::client::Client::connect(&addr);
            })
            .map_err(|e| format!("spawn dispatcher: {e}"))?
    };

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let depth = Arc::clone(&depth);
        let shed = Arc::clone(&shed);
        let max_queue = cfg.max_queue;
        thread::Builder::new()
            .name("dbds-accept".into())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    let stream = match listener.accept() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let tx = tx.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let depth = Arc::clone(&depth);
                    let shed = Arc::clone(&shed);
                    let _ = thread::Builder::new()
                        .name("dbds-conn".into())
                        .spawn(move || {
                            connection(stream, &tx, &shutdown, &depth, &shed, max_queue);
                        });
                }
            })
            .map_err(|e| format!("spawn accept loop: {e}"))?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread,
        dispatcher_thread,
    })
}

fn bind(listen: &str) -> Result<(Listener, String), String> {
    if let Some(path) = listen.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
        Ok((Listener::Unix(l), format!("unix:{path}")))
    } else {
        let l = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
        let addr = l
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?
            .to_string();
        Ok((Listener::Tcp(l), addr))
    }
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// The dispatcher: drains the queue in batches, owns the service.
fn dispatcher(
    mut service: CompileService,
    rx: &mpsc::Receiver<Job>,
    shutdown: &AtomicBool,
    depth: &AtomicUsize,
    shed: &AtomicU64,
) {
    while let Ok(first) = rx.recv() {
        // Batch: everything already waiting rides along with the job
        // that woke us, so a burst of clients compiles in one parallel
        // fan-out instead of serially.
        let mut jobs = vec![first];
        while let Ok(job) = rx.try_recv() {
            jobs.push(job);
        }
        depth.fetch_sub(jobs.len(), Ordering::SeqCst);

        service.record_shed(shed.swap(0, Ordering::SeqCst));

        let mut compile_jobs = Vec::new();
        let mut stop = false;
        for job in jobs {
            match job {
                Job::Compile { req, reply } => compile_jobs.push((req, reply)),
                Job::Status { reply } => {
                    let mut status = service.status_json();
                    if let Json::Obj(pairs) = &mut status {
                        pairs.insert(0, ("proto".into(), Json::str(PROTO_VERSION)));
                    }
                    let _ = reply.send(status);
                }
                Job::Shutdown { reply } => {
                    let _ = reply.send(Json::Obj(vec![("ok".into(), Json::Bool(true))]));
                    stop = true;
                }
            }
        }

        let reqs: Vec<_> = compile_jobs.iter().map(|(r, _)| r.clone()).collect();
        let outcomes = service.compile_batch(&reqs);
        for ((_req, reply), outcome) in compile_jobs.into_iter().zip(&outcomes) {
            let _ = reply.send(response_json(outcome));
        }

        if stop {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// One client connection: read frames, enqueue, relay replies.
fn connection(
    mut stream: Stream,
    tx: &mpsc::Sender<Job>,
    shutdown: &AtomicBool,
    depth: &AtomicUsize,
    shed: &AtomicU64,
    max_queue: usize,
) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(v)) => v,
            Ok(None) => return, // client hung up
            Err(_) => return,
        };
        let request = match Request::from_json(&frame) {
            Ok(r) => r,
            Err(msg) => {
                let _ = write_frame(&mut stream, &error_json(&ServiceError::BadRequest(msg)));
                continue;
            }
        };

        // Admission control: compile jobs respect the queue bound;
        // status/shutdown are tiny and always admitted.
        if matches!(request, Request::Compile(_)) && depth.load(Ordering::SeqCst) >= max_queue {
            shed.fetch_add(1, Ordering::SeqCst);
            let _ = write_frame(&mut stream, &error_json(&ServiceError::Overloaded));
            continue;
        }
        if shutdown.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
            let _ = write_frame(&mut stream, &error_json(&ServiceError::Overloaded));
            continue;
        }

        let (reply_tx, reply_rx) = mpsc::channel();
        let job = match request {
            Request::Compile(req) => Job::Compile {
                req,
                reply: reply_tx,
            },
            Request::Status => Job::Status { reply: reply_tx },
            Request::Shutdown => Job::Shutdown { reply: reply_tx },
        };
        depth.fetch_add(1, Ordering::SeqCst);
        if tx.send(job).is_err() {
            // Dispatcher is gone (shutdown raced us).
            let _ = write_frame(&mut stream, &error_json(&ServiceError::Overloaded));
            return;
        }
        match reply_rx.recv() {
            Ok(json) => {
                if write_frame(&mut stream, &json).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
