//! The `dbds-server` daemon: socket listeners, a bounded admission
//! queue with load shedding, and N dispatcher threads over the sharded
//! [`CompileService`].
//!
//! Architecture: connection threads parse frames, answer status
//! directly (it only locks shards, briefly, in order), and route each
//! compile job to the dispatcher that owns its shard
//! (`dispatcher = key.shard(shards) % dispatchers`). Every store
//! access and compilation happens on a dispatcher, which drains its
//! queue in batches (so concurrent clients still get the unit-level
//! parallel fan-out of [`CompileService::compile_batch`]).
//!
//! Determinism: a request's shard is a pure function of its key, every
//! shard is owned by exactly one dispatcher, and a dispatcher drains
//! its queue in arrival order — so each shard observes its requests in
//! submission order whatever the dispatcher count, and the summed
//! status counters are byte-identical across `DBDS_DISPATCHERS`
//! (gated in CI).
//!
//! Admission control is a single atomic reserve-or-shed
//! ([`try_admit`]): the queue slot is reserved by the same
//! compare-and-swap that checks the bound, so concurrent clients can
//! never overshoot `max_queue` (the old check-then-enqueue pattern
//! could, between the load and the increment).

use crate::json::Json;
use crate::proto::{
    error_json, read_frame, response_json, write_frame, FrameError, Request, PROTO_VERSION,
};
use crate::service::{CompileService, ServiceConfig, ServiceError};
use crate::store::{BoundedStore, CompiledStore, DiskStore, MemStore, StoreError, TieredStore};
use dbds_core::DbdsConfig;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// Which store backend the daemon should open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreChoice {
    /// In-memory cache (dies with the daemon).
    Mem,
    /// Crash-safe on-disk store rooted at the given directory.
    Disk(PathBuf),
}

impl StoreChoice {
    /// Opens the chosen backend, unsharded and unwrapped. A store
    /// directory that cannot be opened degrades to the in-memory
    /// backend with a warning on stderr — a broken cache must not
    /// prevent serving.
    pub fn open(&self) -> Box<dyn CompiledStore> {
        match self {
            StoreChoice::Mem => Box::new(MemStore::new()),
            StoreChoice::Disk(dir) => match DiskStore::open(dir) {
                Ok(s) => Box::new(s),
                Err(StoreError(e)) => {
                    eprintln!(
                        "dbds-server: warning: store {} unusable ({e}); \
                         falling back to in-memory cache",
                        dir.display()
                    );
                    Box::new(MemStore::new())
                }
            },
        }
    }

    /// Opens `shards` backends for a sharded service. Disk shards live
    /// in `dir/shard-<i>/` subdirectories and carry their shard id to
    /// the fault-injection sites; a `budget` is split evenly across
    /// shards and enforced per shard by a [`BoundedStore`]; `tiered`
    /// puts a write-through in-memory front in front of each disk
    /// shard. Any shard that cannot be opened degrades to in-memory,
    /// like [`StoreChoice::open`].
    pub fn open_shards(
        &self,
        shards: usize,
        budget: Option<u64>,
        tiered: bool,
    ) -> Vec<Box<dyn CompiledStore>> {
        let shards = shards.max(1);
        (0..shards)
            .map(|i| {
                let mut store: Box<dyn CompiledStore> = match self {
                    StoreChoice::Mem => Box::new(MemStore::new()),
                    StoreChoice::Disk(dir) => {
                        let shard_dir = dir.join(format!("shard-{i}"));
                        match DiskStore::open_shard(&shard_dir, i as u32) {
                            Ok(s) => Box::new(s),
                            Err(StoreError(e)) => {
                                eprintln!(
                                    "dbds-server: warning: store shard {} unusable ({e}); \
                                     falling back to in-memory cache",
                                    shard_dir.display()
                                );
                                Box::new(MemStore::new())
                            }
                        }
                    }
                };
                if tiered {
                    store = Box::new(TieredStore::new(store));
                }
                if let Some(total) = budget {
                    match BoundedStore::new(store, total / shards as u64) {
                        Ok(bounded) => store = Box::new(bounded),
                        Err(StoreError(e)) => {
                            eprintln!("dbds-server: warning: shard {i} budget not enforced ({e})");
                            store = match self {
                                StoreChoice::Mem => Box::new(MemStore::new()),
                                StoreChoice::Disk(dir) => {
                                    self.reopen_unbounded(&dir.join(format!("shard-{i}")), i as u32)
                                }
                            };
                        }
                    }
                }
                store
            })
            .collect()
    }

    /// Fallback when wrapping a shard failed: reopen it plain.
    fn reopen_unbounded(&self, dir: &PathBuf, shard: u32) -> Box<dyn CompiledStore> {
        match DiskStore::open_shard(dir, shard) {
            Ok(s) => Box::new(s),
            Err(_) => Box::new(MemStore::new()),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address: `host:port` for TCP or `unix:<path>` for a Unix
    /// domain socket.
    pub listen: String,
    /// Store backend.
    pub store: StoreChoice,
    /// Compilation configuration (thread counts honor
    /// `DBDS_SIM_THREADS` / `DBDS_UNIT_THREADS` via its default).
    pub base_cfg: DbdsConfig,
    /// Store retry/backoff tuning.
    pub service: ServiceConfig,
    /// Admission-queue bound: jobs beyond this many waiting are shed
    /// with a typed `overloaded` response.
    pub max_queue: usize,
    /// Store shard count. Part of the store layout (disk shards live
    /// in `shard-<i>/` subdirectories), not of the execution plan:
    /// counters and results are invariant in it, but changing it on an
    /// existing store re-routes keys to cold shards.
    pub shards: usize,
    /// Dispatcher thread count (defaults to `DBDS_DISPATCHERS` or 1).
    /// Purely an execution knob: status counters are byte-identical
    /// across dispatcher counts.
    pub dispatchers: usize,
    /// Total store byte budget, split evenly across shards and
    /// enforced by second-chance eviction; `None` = unbounded.
    pub store_budget: Option<u64>,
    /// Put a write-through in-memory front in front of each disk
    /// shard. Off by default: the front masks on-disk corruption until
    /// restart, which the heal-path e2e exercises against.
    pub tiered: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            store: StoreChoice::Mem,
            base_cfg: DbdsConfig::default(),
            service: ServiceConfig::default(),
            max_queue: 128,
            shards: 8,
            dispatchers: std::env::var("DBDS_DISPATCHERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(1),
            store_budget: None,
            tiered: false,
        }
    }
}

/// Either listener flavor.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Either stream flavor; the protocol layer only needs `Read + Write`.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One queued unit of dispatcher work.
enum Job {
    Compile {
        req: crate::service::CompileRequest,
        reply: mpsc::Sender<Json>,
    },
    Shutdown {
        reply: mpsc::Sender<Json>,
    },
}

/// A running daemon: the resolved listen address plus the thread
/// handles needed to join it.
#[derive(Debug)]
pub struct ServerHandle {
    /// The resolved address clients should connect to (`host:port` or
    /// `unix:<path>`), useful when the config asked for port 0.
    pub addr: String,
    shutdown: Arc<AtomicBool>,
    peak_depth: Arc<AtomicUsize>,
    accept_thread: thread::JoinHandle<()>,
    dispatcher_threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Blocks until the daemon has shut down (a client sent
    /// `shutdown`, or [`ServerHandle::stop`] was called).
    pub fn join(self) {
        for t in self.dispatcher_threads {
            let _ = t.join();
        }
        let _ = self.accept_thread.join();
    }

    /// Requests shutdown from the hosting process (equivalent to a
    /// client `shutdown` op) and waits for the daemon to stop.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the accept loop out of `accept()`.
        let _ = crate::client::Client::connect(&self.addr);
        self.join();
    }

    /// The highest admission-queue depth observed so far. The
    /// reserve-or-shed admission guarantees this never exceeds
    /// `max_queue` (gated by the multi-client daemon test).
    pub fn peak_queue(&self) -> usize {
        self.peak_depth.load(Ordering::SeqCst)
    }
}

/// Reserve-or-shed admission: atomically takes a queue slot iff the
/// depth is under `max`. The check and the reservation are one
/// compare-and-swap, so the bound holds under any number of concurrent
/// connection threads.
fn try_admit(depth: &AtomicUsize, max: usize) -> bool {
    depth
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
            (d < max).then_some(d + 1)
        })
        .is_ok()
}

/// Binds the listener and starts the accept + dispatcher threads.
///
/// # Errors
///
/// Returns a message when the listen address cannot be parsed or
/// bound. Store problems do *not* fail startup (see
/// [`StoreChoice::open_shards`]).
pub fn serve(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let (listener, addr) = bind(&cfg.listen)?;
    let service = Arc::new(CompileService::with_shards(
        cfg.store
            .open_shards(cfg.shards, cfg.store_budget, cfg.tiered),
        cfg.base_cfg.clone(),
        cfg.service.clone(),
    ));

    let shutdown = Arc::new(AtomicBool::new(false));
    let depth = Arc::new(AtomicUsize::new(0));
    let peak_depth = Arc::new(AtomicUsize::new(0));
    let n_dispatchers = cfg.dispatchers.max(1);

    let mut senders = Vec::with_capacity(n_dispatchers);
    let mut dispatcher_threads = Vec::with_capacity(n_dispatchers);
    for d in 0..n_dispatchers {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        let service = Arc::clone(&service);
        let depth = Arc::clone(&depth);
        dispatcher_threads.push(
            thread::Builder::new()
                .name(format!("dbds-dispatch-{d}"))
                .spawn(move || dispatcher(&service, &rx, &depth))
                .map_err(|e| format!("spawn dispatcher {d}: {e}"))?,
        );
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let depth = Arc::clone(&depth);
        let peak_depth = Arc::clone(&peak_depth);
        let senders = senders.clone();
        let addr = addr.clone();
        let max_queue = cfg.max_queue;
        thread::Builder::new()
            .name("dbds-accept".into())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    let stream = match listener.accept() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let conn = Conn {
                        service: Arc::clone(&service),
                        senders: senders.clone(),
                        shutdown: Arc::clone(&shutdown),
                        depth: Arc::clone(&depth),
                        peak_depth: Arc::clone(&peak_depth),
                        max_queue,
                        addr: addr.clone(),
                    };
                    let _ = thread::Builder::new()
                        .name("dbds-conn".into())
                        .spawn(move || connection(stream, &conn));
                }
                // Dropping `senders` here closes every dispatcher
                // queue once the last connection thread exits too.
            })
            .map_err(|e| format!("spawn accept loop: {e}"))?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        peak_depth,
        accept_thread,
        dispatcher_threads,
    })
}

fn bind(listen: &str) -> Result<(Listener, String), String> {
    if let Some(path) = listen.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path).map_err(|e| format!("bind {path}: {e}"))?;
        Ok((Listener::Unix(l), format!("unix:{path}")))
    } else {
        let l = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
        let addr = l
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?
            .to_string();
        Ok((Listener::Tcp(l), addr))
    }
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// One dispatcher: drains its queue in batches. Every job in this
/// queue routes to a shard this dispatcher owns, so batches touch
/// disjoint shard sets across dispatchers and each shard sees its
/// requests in arrival order.
fn dispatcher(service: &CompileService, rx: &mpsc::Receiver<Job>, depth: &AtomicUsize) {
    while let Ok(first) = rx.recv() {
        // Batch: everything already waiting rides along with the job
        // that woke us, so a burst of clients compiles in one parallel
        // fan-out instead of serially.
        let mut jobs = vec![first];
        while let Ok(job) = rx.try_recv() {
            jobs.push(job);
        }

        let mut compile_jobs = Vec::new();
        let mut stop = false;
        for job in jobs {
            match job {
                Job::Compile { req, reply } => compile_jobs.push((req, reply)),
                Job::Shutdown { reply } => {
                    let _ = reply.send(Json::Obj(vec![("ok".into(), Json::Bool(true))]));
                    stop = true;
                }
            }
        }
        // Only compile jobs hold admission slots.
        depth.fetch_sub(compile_jobs.len(), Ordering::SeqCst);

        let reqs: Vec<_> = compile_jobs.iter().map(|(r, _)| r.clone()).collect();
        let outcomes = service.compile_batch(&reqs);
        for ((_req, reply), outcome) in compile_jobs.into_iter().zip(&outcomes) {
            let _ = reply.send(response_json(outcome));
        }

        if stop {
            return;
        }
    }
}

/// Everything a connection thread needs, bundled to keep the spawn
/// site readable.
struct Conn {
    service: Arc<CompileService>,
    senders: Vec<mpsc::Sender<Job>>,
    shutdown: Arc<AtomicBool>,
    depth: Arc<AtomicUsize>,
    peak_depth: Arc<AtomicUsize>,
    max_queue: usize,
    addr: String,
}

/// Writes a response frame; an oversized payload is replaced by the
/// typed `frame-too-large` error on the still-intact stream. Returns
/// `false` when the connection is dead.
fn write_response(stream: &mut Stream, v: &Json) -> bool {
    match write_frame(stream, v) {
        Ok(()) => true,
        Err(FrameError::TooLarge(_)) => {
            write_frame(stream, &error_json(&ServiceError::FrameTooLarge)).is_ok()
        }
        Err(FrameError::Io(_)) => false,
    }
}

/// One client connection: read frames, route compile jobs to their
/// shard's dispatcher, answer status inline, relay replies.
fn connection(mut stream: Stream, conn: &Conn) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(v)) => v,
            Ok(None) => return, // client hung up
            Err(_) => return,
        };
        let request = match Request::from_json(&frame) {
            Ok(r) => r,
            Err(msg) => {
                if !write_response(&mut stream, &error_json(&ServiceError::BadRequest(msg))) {
                    return;
                }
                continue;
            }
        };

        if conn.shutdown.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
            let _ = write_response(&mut stream, &error_json(&ServiceError::Overloaded));
            continue;
        }

        match request {
            Request::Status => {
                // Served inline: status only locks shards (in shard
                // order), it never compiles, so it needs no queue slot
                // and cannot jump ahead of a shard's compile order —
                // shard locks serialize it against in-flight work.
                let mut status = conn.service.status_json();
                if let Json::Obj(pairs) = &mut status {
                    pairs.insert(0, ("proto".into(), Json::str(PROTO_VERSION)));
                }
                if !write_response(&mut stream, &status) {
                    return;
                }
            }
            Request::Shutdown => {
                conn.shutdown.store(true, Ordering::SeqCst);
                let (reply_tx, reply_rx) = mpsc::channel();
                for tx in &conn.senders {
                    let _ = tx.send(Job::Shutdown {
                        reply: reply_tx.clone(),
                    });
                }
                drop(reply_tx);
                let ok = reply_rx
                    .recv()
                    .unwrap_or_else(|_| Json::Obj(vec![("ok".into(), Json::Bool(true))]));
                let _ = write_response(&mut stream, &ok);
                // Nudge the accept loop out of its blocking accept()
                // so it observes the flag and drops its senders.
                let _ = crate::client::Client::connect(&conn.addr);
                return;
            }
            Request::Compile(req) => {
                // Admission control: one atomic reserve-or-shed.
                if !try_admit(&conn.depth, conn.max_queue) {
                    conn.service.record_shed(1);
                    if !write_response(&mut stream, &error_json(&ServiceError::Overloaded)) {
                        return;
                    }
                    continue;
                }
                conn.peak_depth
                    .fetch_max(conn.depth.load(Ordering::SeqCst), Ordering::SeqCst);

                let shard = conn.service.shard_for(&req);
                let dispatcher = shard % conn.senders.len();
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = Job::Compile {
                    req,
                    reply: reply_tx,
                };
                if conn.senders[dispatcher].send(job).is_err() {
                    // Dispatcher is gone (shutdown raced us).
                    conn.depth.fetch_sub(1, Ordering::SeqCst);
                    let _ = write_response(&mut stream, &error_json(&ServiceError::Overloaded));
                    return;
                }
                match reply_rx.recv() {
                    Ok(json) => {
                        if !write_response(&mut stream, &json) {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        }
    }
}
