//! # dbds-workloads — synthetic benchmark suites
//!
//! The paper evaluates on Java DaCapo, Scala DaCapo, a Java/Scala
//! micro-benchmark suite and JavaScript Octane (§6.1). Those are JVM/JS
//! artifacts we cannot execute here, so this crate generates *synthetic
//! stand-ins*: one seeded, deterministic IR compilation unit per benchmark
//! name, with a per-suite mix of code shapes chosen to mimic each suite's
//! documented character (see DESIGN.md §2 for the substitution argument).
//! Each workload carries interpreter inputs, so the harness can measure
//! dynamic-cycle peak performance.
//!
//! # Examples
//!
//! ```
//! use dbds_workloads::Suite;
//!
//! let suite = Suite::Micro.workloads();
//! assert_eq!(suite.len(), 12);
//! let wordcount = suite.iter().find(|w| w.name == "wordcount").unwrap();
//! assert!(!wordcount.graph.merge_blocks().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod fragments;
mod generator;
mod suites;

pub use fragments::{FragmentCtx, FragmentKind, SharedState};
pub use generator::{generate_graph, generate_inputs, standard_classes, Profile, StandardClasses};
pub use suites::{Suite, SPLIT_BENCHMARKS};

use dbds_ir::{Graph, Value};

/// One benchmark: a named compilation unit plus its interpreter inputs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as printed in the paper's figures.
    pub name: String,
    /// The suite it belongs to.
    pub suite: Suite,
    /// The compilation unit.
    pub graph: Graph,
    /// Argument vectors the harness interprets to measure peak
    /// performance.
    pub inputs: Vec<Vec<Value>>,
}

/// Generates every workload of every suite, in paper order.
pub fn all_workloads() -> Vec<Workload> {
    Suite::ALL.iter().flat_map(|s| s.workloads()).collect()
}
