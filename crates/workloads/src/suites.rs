//! The four benchmark suites of the paper's evaluation (§6.1), as
//! synthetic stand-ins: same benchmark names, per-suite opportunity mixes
//! chosen to mimic each suite's documented character (see DESIGN.md §2).

use crate::fragments::FragmentKind::{self, *};
use crate::generator::{generate_graph, generate_inputs, Profile};
use crate::Workload;
use std::fmt;

/// The benchmark suite a workload belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// Java DaCapo (Figure 5): mature Java code, few duplication
    /// opportunities relative to total work.
    JavaDaCapo,
    /// Scala DaCapo (Figure 6): boxing and type-check heavy.
    ScalaDaCapo,
    /// The Java/Scala micro benchmarks (Figure 7): small, dense kernels.
    Micro,
    /// JavaScript Octane via Graal.js (Figure 8): large branchy units.
    Octane,
}

impl Suite {
    /// All suites in paper order.
    pub const ALL: [Suite; 4] = [
        Suite::JavaDaCapo,
        Suite::ScalaDaCapo,
        Suite::Micro,
        Suite::Octane,
    ];

    /// Human-readable suite title as used in the figures.
    pub fn title(self) -> &'static str {
        match self {
            Suite::JavaDaCapo => "Java DaCapo",
            Suite::ScalaDaCapo => "Scala DaCapo",
            Suite::Micro => "Java/Scala Micro Benchmarks",
            Suite::Octane => "Graal JS Octane",
        }
    }

    /// Stable lowercase identifier (harness CLI).
    pub fn id(self) -> &'static str {
        match self {
            Suite::JavaDaCapo => "java-dacapo",
            Suite::ScalaDaCapo => "scala-dacapo",
            Suite::Micro => "micro",
            Suite::Octane => "octane",
        }
    }

    /// The figure of the paper this suite reproduces.
    pub fn figure(self) -> u32 {
        match self {
            Suite::JavaDaCapo => 5,
            Suite::ScalaDaCapo => 6,
            Suite::Micro => 7,
            Suite::Octane => 8,
        }
    }

    /// The benchmark names, exactly as they appear in the figures.
    pub fn benchmark_names(self) -> &'static [&'static str] {
        match self {
            Suite::JavaDaCapo => &[
                "avrora", "batik", "fop", "h2", "jython", "luindex", "lusearch", "pmd", "sunflow",
                "xalan",
            ],
            Suite::ScalaDaCapo => &[
                "actors",
                "apparat",
                "factorie",
                "kiama",
                "scalac",
                "scaladoc",
                "scalap",
                "scalariform",
                "scalatest",
                "scalaxb",
                "specs",
                "tmt",
            ],
            Suite::Micro => &[
                "akkaPP",
                "bufdecode",
                "charcount",
                "charhist",
                "chisquare",
                "groupbyrem",
                "kmeanCPCA",
                "streamPerson",
                "wordcount",
                "branchchain",
                "corrcond",
                "testladder",
            ],
            Suite::Octane => &[
                "box2d",
                "code-load",
                "deltablue",
                "earley-boyer",
                "gameboy",
                "mandreel",
                "navier-stokes",
                "pdfjs",
                "raytrace",
                "regexp",
                "richards",
                "splay",
                "typescript",
                "zlib",
            ],
        }
    }

    /// The generator profile that gives the suite its character.
    pub fn profile(self) -> Profile {
        fn w(pairs: &[(FragmentKind, f64)]) -> Vec<(FragmentKind, f64)> {
            pairs.to_vec()
        }
        match self {
            // Mature Java: mostly neutral control flow and opaque calls;
            // opportunities are rare and often cold.
            Suite::JavaDaCapo => Profile {
                fragments: (30, 55),
                weights: w(&[
                    (Neutral, 0.38),
                    (Invoke, 0.26),
                    (Array, 0.10),
                    (HotLoop, 0.01),
                    (Bloat, 0.14),
                    (ConstFold, 0.04),
                    (CondElim, 0.03),
                    (ReadElim, 0.02),
                    (StrengthReduce, 0.01),
                    (Pea, 0.01),
                ]),
                input_sets: 3,
            },
            // Scala: auto-boxing (PEA) and type checks (CE) dominate the
            // opportunity mix, as described by Stadler et al.
            Suite::ScalaDaCapo => Profile {
                fragments: (25, 45),
                weights: w(&[
                    (Neutral, 0.26),
                    (Invoke, 0.20),
                    (Array, 0.04),
                    (HotLoop, 0.02),
                    (Bloat, 0.08),
                    (ConstFold, 0.06),
                    (CondElim, 0.08),
                    (ReadElim, 0.06),
                    (StrengthReduce, 0.03),
                    (Pea, 0.08),
                    (TypeCheck, 0.08),
                ]),
                input_sets: 3,
            },
            // Micro kernels: small units saturated with the §2 patterns
            // (streams/lambdas: escape analysis and type checks).
            Suite::Micro => Profile {
                fragments: (8, 16),
                weights: w(&[
                    (Neutral, 0.12),
                    (Invoke, 0.12),
                    (HotLoop, 0.05),
                    (Bloat, 0.03),
                    (ConstFold, 0.13),
                    (CondElim, 0.12),
                    (ReadElim, 0.11),
                    (StrengthReduce, 0.10),
                    (Pea, 0.13),
                    (TypeCheck, 0.09),
                ]),
                input_sets: 4,
            },
            // Octane: very large compilation units with many merges, a
            // rich mix of opportunities and plenty of cold bloat.
            Suite::Octane => Profile {
                fragments: (60, 120),
                weights: w(&[
                    (Neutral, 0.11),
                    (Invoke, 0.06),
                    (Array, 0.05),
                    (HotLoop, 0.11),
                    (Dispatch, 0.05),
                    (Bloat, 0.12),
                    (ConstFold, 0.16),
                    (CondElim, 0.14),
                    (ReadElim, 0.09),
                    (StrengthReduce, 0.06),
                    (Pea, 0.05),
                    (TypeCheck, 0.03),
                ]),
                input_sets: 2,
            },
        }
    }

    /// The generator profile for one benchmark of this suite: the
    /// branch-splitting benchmarks ([`SPLIT_BENCHMARKS`]) get their
    /// dedicated shape mix, every other name the suite profile. Seeds
    /// are per-name ([`seed_for`]), so the override never perturbs the
    /// graphs of pre-existing benchmarks.
    pub fn profile_for(self, name: &str) -> Profile {
        if SPLIT_BENCHMARKS.contains(&name) {
            split_profile(name)
        } else {
            self.profile()
        }
    }

    /// Generates all workloads of this suite.
    pub fn workloads(self) -> Vec<Workload> {
        self.benchmark_names()
            .iter()
            .map(|name| {
                let profile = self.profile_for(name);
                let seed = seed_for(self, name);
                Workload {
                    name: (*name).to_string(),
                    suite: self,
                    graph: generate_graph(name, &profile, seed),
                    inputs: generate_inputs(&profile, seed),
                }
            })
            .collect()
    }
}

/// The benchmarks whose units are built from the branch-splitting
/// fragment shapes — merge duplication alone cannot crack them, so the
/// harness's merge-only ablation sweeps exactly this list.
pub const SPLIT_BENCHMARKS: [&str; 3] = ["branchchain", "corrcond", "testladder"];

/// The dedicated profile of one branch-splitting benchmark: dominated
/// by its namesake shape, diluted with neutral merges and opaque calls.
/// No hot loops, so a cold edge's static probability is exactly
/// `1 − prob_then` and the trade-off pricing in DESIGN.md applies
/// verbatim.
fn split_profile(name: &str) -> Profile {
    let kind = match name {
        "branchchain" => DiamondChain,
        "corrcond" => CorrelatedConditionals,
        _ => RepeatedTestLadder,
    };
    Profile {
        fragments: (6, 10),
        weights: vec![(kind, 0.6), (Neutral, 0.25), (Invoke, 0.15)],
        input_sets: 4,
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// Deterministic per-benchmark seed (FNV over suite id + name).
fn seed_for(suite: Suite, name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in suite.id().bytes().chain(name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify};

    #[test]
    fn suite_names_match_the_figures() {
        // Micro carries the paper's 9 names plus the 3 branch-splitting
        // benchmarks this reproduction adds for the ablation.
        assert_eq!(Suite::JavaDaCapo.benchmark_names().len(), 10);
        assert_eq!(Suite::ScalaDaCapo.benchmark_names().len(), 12);
        assert_eq!(Suite::Micro.benchmark_names().len(), 12);
        assert_eq!(Suite::Octane.benchmark_names().len(), 14);
        assert!(Suite::JavaDaCapo.benchmark_names().contains(&"jython"));
        assert!(Suite::Octane.benchmark_names().contains(&"raytrace"));
        for split in SPLIT_BENCHMARKS {
            assert!(Suite::Micro.benchmark_names().contains(&split));
        }
    }

    #[test]
    fn split_benchmarks_use_the_dedicated_profile_without_perturbing_others() {
        let split = Suite::Micro.profile_for("branchchain");
        assert!(split
            .weights
            .iter()
            .any(|&(k, w)| k == DiamondChain && w > 0.0));
        // Pre-existing names keep the unmodified suite profile: same
        // weights, and (with per-name seeds) bit-identical graphs.
        let plain = Suite::Micro.profile_for("wordcount");
        assert_eq!(plain.weights, Suite::Micro.profile().weights);
        let wc = Suite::Micro
            .workloads()
            .into_iter()
            .find(|w| w.name == "wordcount")
            .expect("wordcount exists");
        let direct = generate_graph(
            "wordcount",
            &Suite::Micro.profile(),
            seed_for(Suite::Micro, "wordcount"),
        );
        assert_eq!(
            dbds_ir::print_graph(&wc.graph),
            dbds_ir::print_graph(&direct)
        );
    }

    #[test]
    fn all_workloads_verify_and_execute() {
        for suite in Suite::ALL {
            for w in suite.workloads() {
                verify(&w.graph).unwrap_or_else(|e| panic!("{}/{}: {e}", suite.id(), w.name));
                for input in &w.inputs {
                    let r = execute(&w.graph, input);
                    assert!(
                        r.outcome.is_ok(),
                        "{}/{} trapped: {:?}",
                        suite.id(),
                        w.name,
                        r.outcome
                    );
                }
            }
        }
    }

    #[test]
    fn workloads_are_stable_across_calls() {
        let a = Suite::Micro.workloads();
        let b = Suite::Micro.workloads();
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(
                dbds_ir::print_graph(&wa.graph),
                dbds_ir::print_graph(&wb.graph)
            );
        }
    }

    #[test]
    fn octane_units_are_larger_than_micro_units() {
        let micro_avg: usize = Suite::Micro
            .workloads()
            .iter()
            .map(|w| w.graph.live_inst_count())
            .sum::<usize>()
            / 12;
        let octane_avg: usize = Suite::Octane
            .workloads()
            .iter()
            .map(|w| w.graph.live_inst_count())
            .sum::<usize>()
            / 14;
        assert!(
            octane_avg > 3 * micro_avg,
            "octane {octane_avg} vs micro {micro_avg}"
        );
    }

    #[test]
    fn figure_mapping() {
        assert_eq!(Suite::JavaDaCapo.figure(), 5);
        assert_eq!(Suite::Octane.figure(), 8);
        assert_eq!(Suite::ScalaDaCapo.to_string(), "Scala DaCapo");
    }
}
