//! The seeded workload generator.
//!
//! A [`Profile`] describes the *character* of a suite — how many fragments
//! a compilation unit chains and how likely each [`FragmentKind`] is. The
//! generator expands a profile into a concrete [`dbds_ir::Graph`]
//! deterministically from a seed, so every run of the harness (and every
//! benchmark iteration) sees identical workloads.

use crate::fragments::{emit, FragmentCtx, FragmentKind, SharedState};
use dbds_ir::{ClassTable, Graph, GraphBuilder, Type, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The shape parameters of one suite.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Fragment count range (inclusive min, exclusive max).
    pub fragments: (usize, usize),
    /// Relative weight per fragment kind; zero removes the kind.
    pub weights: Vec<(FragmentKind, f64)>,
    /// Number of interpreter input vectors to attach.
    pub input_sets: usize,
}

impl Profile {
    fn pick(&self, rng: &mut SmallRng) -> FragmentKind {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut roll = rng.random_range(0.0..total);
        for &(kind, w) in &self.weights {
            if roll < w {
                return kind;
            }
            roll -= w;
        }
        self.weights.last().expect("non-empty weights").0
    }
}

/// Builds the class table shared by all generated units.
pub fn standard_classes() -> (Arc<ClassTable>, StandardClasses) {
    let mut t = ClassTable::new();
    let box_cls = t.add_class("Box");
    let f_val = t.add_field(box_cls, "val", Type::Int);
    let holder_cls = t.add_class("Holder");
    let f_ref = t.add_field(holder_cls, "r", Type::Ref(box_cls));
    let counter_cls = t.add_class("Counter");
    let f_n = t.add_field(counter_cls, "n", Type::Int);
    (
        Arc::new(t),
        StandardClasses {
            box_cls,
            holder_cls,
            counter_cls,
            f_val,
            f_ref,
            f_n,
        },
    )
}

/// Ids of the standard generated classes.
#[derive(Clone, Copy, Debug)]
pub struct StandardClasses {
    /// `Box { val: int }`.
    pub box_cls: dbds_ir::ClassId,
    /// `Holder { r: ref Box }`.
    pub holder_cls: dbds_ir::ClassId,
    /// `Counter { n: int }`.
    pub counter_cls: dbds_ir::ClassId,
    /// `Box.val`.
    pub f_val: dbds_ir::FieldId,
    /// `Holder.r`.
    pub f_ref: dbds_ir::FieldId,
    /// `Counter.n`.
    pub f_n: dbds_ir::FieldId,
}

/// Generates one compilation unit named `name` from `profile` and `seed`.
pub fn generate_graph(name: &str, profile: &Profile, seed: u64) -> Graph {
    let (table, cls) = standard_classes();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(name, &[Type::Int, Type::Int, Type::Int], table);
    let params = [b.param(0), b.param(1), b.param(2)];

    // Entry: the shared escaped objects every fragment may touch.
    let box_obj = b.new_object(cls.box_cls);
    b.store(box_obj, cls.f_val, params[1]);
    let inner = b.new_object(cls.box_cls);
    b.store(inner, cls.f_val, params[2]);
    let holder = b.new_object(cls.holder_cls);
    b.store(holder, cls.f_ref, inner);
    let sink = b.new_object(cls.counter_cls);
    b.invoke(vec![box_obj, holder, sink]);
    let shared = SharedState {
        box_obj,
        holder,
        sink,
        f_val: cls.f_val,
        f_ref: cls.f_ref,
        f_n: cls.f_n,
        box_cls: cls.box_cls,
    };

    let count = rng.random_range(profile.fragments.0..profile.fragments.1);
    let mut acc = params[0];
    for _ in 0..count {
        let kind = profile.pick(&mut rng);
        let mut ctx = FragmentCtx {
            b: &mut b,
            rng: &mut rng,
            acc,
            params,
            shared,
        };
        acc = emit(kind, &mut ctx);
    }
    b.ret(Some(acc));
    b.finish()
}

/// Generates the interpreter inputs for a unit (deterministic from the
/// seed; magnitudes kept moderate so loops stay bounded).
pub fn generate_inputs(profile: &Profile, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    (0..profile.input_sets)
        .map(|_| {
            vec![
                Value::Int(rng.random_range(-1000..1000)),
                Value::Int(rng.random_range(-1000..1000)),
                Value::Int(rng.random_range(-1000..1000)),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, print_graph, verify};

    fn test_profile() -> Profile {
        Profile {
            fragments: (6, 10),
            weights: FragmentKind::ALL.iter().map(|&k| (k, 1.0)).collect(),
            input_sets: 3,
        }
    }

    #[test]
    fn generated_graphs_verify_and_run() {
        let p = test_profile();
        for seed in 0..20 {
            let g = generate_graph("t", &p, seed);
            verify(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for input in generate_inputs(&p, seed) {
                let r = execute(&g, &input);
                assert!(r.outcome.is_ok(), "seed {seed}: {:?}", r.outcome);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = test_profile();
        let g1 = generate_graph("d", &p, 99);
        let g2 = generate_graph("d", &p, 99);
        assert_eq!(print_graph(&g1), print_graph(&g2));
        assert_eq!(generate_inputs(&p, 99), generate_inputs(&p, 99));
    }

    #[test]
    fn different_seeds_differ() {
        let p = test_profile();
        let g1 = generate_graph("d", &p, 1);
        let g2 = generate_graph("d", &p, 2);
        assert_ne!(print_graph(&g1), print_graph(&g2));
    }

    #[test]
    fn generated_units_contain_merges() {
        let p = test_profile();
        let g = generate_graph("m", &p, 5);
        assert!(
            g.merge_blocks().len() >= 4,
            "expected several merges, got {}",
            g.merge_blocks().len()
        );
    }

    #[test]
    fn weights_respect_zero() {
        // Only invoke fragments: no merges at all.
        let p = Profile {
            fragments: (5, 6),
            weights: vec![(FragmentKind::Invoke, 1.0)],
            input_sets: 1,
        };
        let g = generate_graph("inv", &p, 3);
        assert!(g.merge_blocks().is_empty());
    }
}
