//! Code-shape fragments the workload generator composes.
//!
//! Every fragment is a small control-flow pattern modeled on one of the
//! optimization opportunities from §2 of the paper (or deliberately on
//! none). A fragment consumes the running accumulator value and produces
//! a new one; fragments chain sequentially, optionally inside loops.

use dbds_ir::{BlockId, CmpOp, FieldId, GraphBuilder, Inst, InstId, Type};
use rand::rngs::SmallRng;
use rand::Rng;

/// The kinds of fragments the generator can emit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FragmentKind {
    /// Figure 1: constant folding after duplication.
    ConstFold,
    /// Listings 1–2: a dominated condition provable on one path.
    CondElim,
    /// Figure 3: multiplication by a path-constant power of two.
    StrengthReduce,
    /// Listings 3–4: allocation escaping only through a φ.
    Pea,
    /// Listings 5–6: a partially redundant field read.
    ReadElim,
    /// A type check (instanceof) decidable on one path — the Scala-style
    /// opportunity.
    TypeCheck,
    /// A merge with no opportunity at all.
    Neutral,
    /// A large merge with a tiny opportunity on a cold path: profitable
    /// for *dupalot*, rejected by the DBDS trade-off.
    Bloat,
    /// A counted loop whose body contains a foldable diamond (hot code).
    HotLoop,
    /// An interpreter-style dispatch chain: a three-way merge whose φ
    /// carries path constants consumed by a later test (the Octane
    /// bytecode-loop pattern).
    Dispatch,
    /// An opaque call (kills memory caches, dominates run time).
    Invoke,
    /// Array traffic with no duplication opportunity.
    Array,
    /// A cold diamond whose merge re-tests the φ it just formed, with a
    /// constant-arithmetic cascade behind the decided arm. Merge
    /// duplication alone folds only the test (rejected by the
    /// trade-off); the branch-splitting continuation also claims the
    /// cascade.
    DiamondChain,
    /// Two correlated conditionals: the merge tests a predicate
    /// *derived* from its φ (`(φ & 7) == K & 7`), so the second branch
    /// is decidable only by carrying the φ constant through the first.
    CorrelatedConditionals,
    /// A ladder of repeated tests of the same φ value: each decided
    /// rung leads to another decided rung — the multi-hop
    /// branch-splitting shape.
    RepeatedTestLadder,
}

impl FragmentKind {
    /// All fragment kinds.
    pub const ALL: [FragmentKind; 15] = [
        FragmentKind::ConstFold,
        FragmentKind::CondElim,
        FragmentKind::StrengthReduce,
        FragmentKind::Pea,
        FragmentKind::ReadElim,
        FragmentKind::TypeCheck,
        FragmentKind::Neutral,
        FragmentKind::Bloat,
        FragmentKind::HotLoop,
        FragmentKind::Dispatch,
        FragmentKind::Invoke,
        FragmentKind::Array,
        FragmentKind::DiamondChain,
        FragmentKind::CorrelatedConditionals,
        FragmentKind::RepeatedTestLadder,
    ];
}

/// Shared, escaped objects every generated unit sets up in its entry
/// block; fragments read and write them.
#[derive(Clone, Copy, Debug)]
pub struct SharedState {
    /// A `Box` instance whose `val` field fragments read.
    pub box_obj: InstId,
    /// A `Holder` whose `r` field stores a `Box` (loads of `r` have
    /// unknown exact class — the raw material for type checks).
    pub holder: InstId,
    /// A `Counter` used as a store sink.
    pub sink: InstId,
    /// `Box.val`.
    pub f_val: FieldId,
    /// `Holder.r`.
    pub f_ref: FieldId,
    /// `Counter.n`.
    pub f_n: FieldId,
    /// The `Box` class.
    pub box_cls: dbds_ir::ClassId,
}

/// The evolving generator context: builder cursor, RNG, accumulator and
/// the function parameters.
#[derive(Debug)]
pub struct FragmentCtx<'a> {
    /// Builder positioned at an open block.
    pub b: &'a mut GraphBuilder,
    /// Deterministic randomness.
    pub rng: &'a mut SmallRng,
    /// The running accumulator (always `Int`).
    pub acc: InstId,
    /// The three integer parameters.
    pub params: [InstId; 3],
    /// The shared escaped objects.
    pub shared: SharedState,
}

impl FragmentCtx<'_> {
    fn p(&mut self) -> InstId {
        self.params[self.rng.random_range(0..3)]
    }
}

/// Emits `kind` at the current cursor and returns the new accumulator.
/// The cursor is left at a fresh open block.
pub fn emit(kind: FragmentKind, ctx: &mut FragmentCtx<'_>) -> InstId {
    match kind {
        FragmentKind::ConstFold => emit_const_fold(ctx),
        FragmentKind::CondElim => emit_cond_elim(ctx),
        FragmentKind::StrengthReduce => emit_strength_reduce(ctx),
        FragmentKind::Pea => emit_pea(ctx),
        FragmentKind::ReadElim => emit_read_elim(ctx),
        FragmentKind::TypeCheck => emit_type_check(ctx),
        FragmentKind::Neutral => emit_neutral(ctx),
        FragmentKind::Bloat => emit_bloat(ctx),
        FragmentKind::HotLoop => emit_hot_loop(ctx),
        FragmentKind::Dispatch => emit_dispatch(ctx),
        FragmentKind::Invoke => emit_invoke(ctx),
        FragmentKind::Array => emit_array(ctx),
        FragmentKind::DiamondChain => emit_diamond_chain(ctx),
        FragmentKind::CorrelatedConditionals => emit_correlated_conditionals(ctx),
        FragmentKind::RepeatedTestLadder => emit_repeated_test_ladder(ctx),
    }
}

/// Builds a diamond: returns `(then, else, merge)` with the cursor left
/// *unswitched* (caller fills the branches).
fn diamond(ctx: &mut FragmentCtx<'_>, cond: InstId, prob_then: f64) -> (BlockId, BlockId, BlockId) {
    let bt = ctx.b.new_block();
    let bf = ctx.b.new_block();
    let bm = ctx.b.new_block();
    ctx.b.branch(cond, bt, bf, prob_then);
    (bt, bf, bm)
}

/// Appends `n` param-mixing instructions to the current block — filler
/// code that never folds. Merge blocks carry such payload so duplicating
/// them has a genuine code-size cost, as in real compilation units.
fn payload(ctx: &mut FragmentCtx<'_>, start: InstId, n: usize) -> InstId {
    let mut t = start;
    for i in 0..n {
        let p = ctx.p();
        t = match i % 4 {
            0 => ctx.b.add(t, p),
            1 => ctx.b.binop(dbds_ir::BinOp::Xor, t, p),
            2 => ctx.b.sub(t, p),
            _ => ctx.b.binop(dbds_ir::BinOp::Or, t, p),
        };
    }
    t
}

/// Figure 1's shape: `φ(acc, C)` feeding an addition with a constant.
fn emit_const_fold(ctx: &mut FragmentCtx<'_>) -> InstId {
    let k = ctx.b.iconst(ctx.rng.random_range(-8..8));
    let zero = ctx.b.iconst(ctx.rng.random_range(0..4));
    let c = ctx.b.cmp(CmpOp::Gt, ctx.acc, k);
    let prob = ctx.rng.random_range(0.3..0.7);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    // φ inputs align with pred order [bt, bf].
    let phi = ctx.b.phi(vec![ctx.acc, zero], Type::Int);
    let two = ctx.b.iconst(2);
    let sum = ctx.b.add(two, phi);
    let n = ctx.rng.random_range(4..10);
    let tail = payload(ctx, sum, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, tail)
}

/// Listing 1's shape: the φ's constant input decides a later condition.
fn emit_cond_elim(ctx: &mut FragmentCtx<'_>) -> InstId {
    let zero = ctx.b.iconst(0);
    let thirteen = ctx.b.iconst(13);
    let twelve = ctx.b.iconst(12);
    let c = ctx.b.cmp(CmpOp::Gt, ctx.acc, zero);
    let prob = ctx.rng.random_range(0.3..0.7);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let p = ctx.b.phi(vec![ctx.acc, thirteen], Type::Int);
    let c2 = ctx.b.cmp(CmpOp::Gt, p, twelve);
    let (b12, bi, join) = diamond(ctx, c2, 0.5);
    ctx.b.switch_to(b12);
    ctx.b.jump(join);
    ctx.b.switch_to(bi);
    let seven = ctx.b.iconst(7);
    let masked = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, seven);
    ctx.b.jump(join);
    ctx.b.switch_to(join);
    let t = ctx.b.phi(vec![twelve, masked], Type::Int);
    let n = ctx.rng.random_range(3..7);
    let tail = payload(ctx, t, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, tail)
}

/// A multiplication by `φ(2^k, odd)`: becomes a shift on one path.
fn emit_strength_reduce(ctx: &mut FragmentCtx<'_>) -> InstId {
    let pw = ctx.b.iconst(1 << ctx.rng.random_range(1..5));
    let p = ctx.p();
    let one = ctx.b.iconst(1);
    let odd = ctx.b.binop(dbds_ir::BinOp::Or, p, one);
    let k = ctx.b.iconst(0);
    let c = ctx.b.cmp(CmpOp::Ge, ctx.acc, k);
    let prob = ctx.rng.random_range(0.4..0.9);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let phi = ctx.b.phi(vec![pw, odd], Type::Int);
    let m = ctx.b.mul(ctx.acc, phi);
    let n = ctx.rng.random_range(3..8);
    let tail = payload(ctx, m, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    let mask = ctx.b.iconst(0xffff);
    ctx.b.binop(dbds_ir::BinOp::And, tail, mask)
}

/// Listing 3's shape: an allocation whose only escape is the φ.
fn emit_pea(ctx: &mut FragmentCtx<'_>) -> InstId {
    let one = ctx.b.iconst(1);
    let parity = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, one);
    let zero = ctx.b.iconst(0);
    let c = ctx.b.cmp(CmpOp::Eq, parity, zero);
    let prob = ctx.rng.random_range(0.3..0.7);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    let shared = ctx.shared;
    ctx.b.switch_to(bt);
    let fresh = ctx.b.new_object(shared.box_cls);
    ctx.b.store(fresh, shared.f_val, ctx.acc);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let obj = ctx
        .b
        .phi(vec![fresh, shared.box_obj], Type::Ref(shared.box_cls));
    let v = ctx.b.load(obj, shared.f_val);
    let n = ctx.rng.random_range(5..12);
    let tail = payload(ctx, v, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, tail)
}

/// Listings 5–6: a read made fully redundant on one path by duplication.
fn emit_read_elim(ctx: &mut FragmentCtx<'_>) -> InstId {
    let zero = ctx.b.iconst(0);
    let c = ctx.b.cmp(CmpOp::Gt, ctx.acc, zero);
    let prob = ctx.rng.random_range(0.3..0.8);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    let shared = ctx.shared;
    ctx.b.switch_to(bt);
    let read1 = ctx.b.load(shared.box_obj, shared.f_val);
    ctx.b.store(shared.sink, shared.f_n, read1);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.store(shared.sink, shared.f_n, zero);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let read2 = ctx.b.load(shared.box_obj, shared.f_val);
    let n = ctx.rng.random_range(4..10);
    let tail = payload(ctx, read2, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, tail)
}

/// A type check decidable only after duplication: `φ(new Box, holder.r)
/// instanceof Box`.
fn emit_type_check(ctx: &mut FragmentCtx<'_>) -> InstId {
    let one = ctx.b.iconst(1);
    let bit = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, one);
    let zero = ctx.b.iconst(0);
    let c = ctx.b.cmp(CmpOp::Ne, bit, zero);
    let prob = ctx.rng.random_range(0.3..0.7);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    let shared = ctx.shared;
    ctx.b.switch_to(bt);
    let fresh = ctx.b.new_object(shared.box_cls);
    ctx.b.store(fresh, shared.f_val, ctx.acc);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    let loaded = ctx.b.load(shared.holder, shared.f_ref);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let obj = ctx.b.phi(vec![fresh, loaded], Type::Ref(shared.box_cls));
    let is_box = ctx.b.instance_of(obj, shared.box_cls);
    let (byes, bno, join) = diamond(ctx, is_box, 0.9);
    ctx.b.switch_to(byes);
    let v = ctx.b.load(obj, shared.f_val);
    ctx.b.jump(join);
    ctx.b.switch_to(bno);
    ctx.b.jump(join);
    ctx.b.switch_to(join);
    let t = ctx.b.phi(vec![v, zero], Type::Int);
    let n = ctx.rng.random_range(3..7);
    let tail = payload(ctx, t, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, tail)
}

/// A merge with no opportunity: the φ mixes two opaque values.
fn emit_neutral(ctx: &mut FragmentCtx<'_>) -> InstId {
    let p1 = ctx.p();
    let p2 = ctx.p();
    let k = ctx.b.iconst(ctx.rng.random_range(-16..16));
    let c = ctx.b.cmp(CmpOp::Lt, ctx.acc, k);
    let prob = ctx.rng.random_range(0.2..0.8);
    let (bt, bf, bm) = diamond(ctx, c, prob);
    ctx.b.switch_to(bt);
    let a = ctx.b.add(ctx.acc, p1);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    let s = ctx.b.sub(ctx.acc, p2);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let phi = ctx.b.phi(vec![a, s], Type::Int);
    let mixed = ctx.b.binop(dbds_ir::BinOp::Xor, phi, p1);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    mixed
}

/// A large merge with one tiny fold on a cold path: the dupalot trap.
fn emit_bloat(ctx: &mut FragmentCtx<'_>) -> InstId {
    let fifteen = ctx.b.iconst(15);
    let masked = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, fifteen);
    let zero = ctx.b.iconst(0);
    let c = ctx.b.cmp(CmpOp::Eq, masked, zero);
    // The constant-carrying path is cold.
    let cold = ctx.rng.random_range(0.01..0.04);
    let kc = ctx.b.iconst(5);
    let (bt, bf, bm) = diamond(ctx, c, cold);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let phi = ctx.b.phi(vec![kc, ctx.acc], Type::Int);
    // One small fold on the cold path…
    let three = ctx.b.iconst(3);
    let foldable = ctx.b.add(phi, three);
    // …buried in a long param-dependent chain that never folds.
    let mut t = foldable;
    let body_len = ctx.rng.random_range(8..16);
    for i in 0..body_len {
        let p = ctx.p();
        t = match i % 4 {
            0 => ctx.b.add(t, p),
            1 => ctx.b.binop(dbds_ir::BinOp::Xor, t, p),
            2 => ctx.b.sub(t, p),
            _ => ctx.b.binop(dbds_ir::BinOp::Or, t, p),
        };
    }
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    t
}

/// A counted loop whose body holds a foldable diamond — the hot-code
/// opportunities the probability term is meant to prioritize.
fn emit_hot_loop(ctx: &mut FragmentCtx<'_>) -> InstId {
    let trips = ctx.b.iconst(ctx.rng.random_range(6..24));
    let zero = ctx.b.iconst(0);
    let one = ctx.b.iconst(1);
    let four = ctx.b.iconst(4);
    let header = ctx.b.new_block();
    let body = ctx.b.new_block();
    let latch = ctx.b.new_block(); // also the inner diamond's merge
    let exit = ctx.b.new_block();
    // Wire the back edge before the header φs exist (set_terminator
    // refuses new edges into blocks with φs).
    ctx.b.jump(header);
    ctx.b.switch_to(latch);
    ctx.b.jump(header);
    // Header: preds are [pre-header, latch]; back-edge inputs are patched
    // once the latch computes them.
    ctx.b.switch_to(header);
    let i = ctx.b.phi(vec![zero, zero], Type::Int);
    let acc_phi = ctx.b.phi(vec![ctx.acc, ctx.acc], Type::Int);
    let c = ctx.b.cmp(CmpOp::Lt, i, trips);
    ctx.b.branch(c, body, exit, 0.92);
    // Body: an inner diamond merging at the latch, carrying one of the
    // §2 opportunity patterns — hot-loop boxing (PEA), redundant reads,
    // or plain constant folding.
    ctx.b.switch_to(body);
    let bit = ctx.b.binop(dbds_ir::BinOp::And, acc_phi, one);
    let inner_c = ctx.b.cmp(CmpOp::Eq, bit, zero);
    let bt = ctx.b.new_block();
    let bf = ctx.b.new_block();
    ctx.b.branch(inner_c, bt, bf, 0.5);
    let shared = ctx.shared;
    let flavor = ctx.rng.random_range(0..10);
    let stepped = if flavor < 2 {
        // PEA flavor: a per-iteration allocation escaping only via the φ
        // (auto-boxing inside a hot loop).
        ctx.b.switch_to(bt);
        let fresh = ctx.b.new_object(shared.box_cls);
        ctx.b.store(fresh, shared.f_val, acc_phi);
        ctx.b.jump(latch);
        ctx.b.switch_to(bf);
        ctx.b.jump(latch);
        ctx.b.switch_to(latch);
        let obj = ctx
            .b
            .phi(vec![fresh, shared.box_obj], Type::Ref(shared.box_cls));
        let v = ctx.b.load(obj, shared.f_val);
        ctx.b.add(v, four)
    } else if flavor < 5 {
        // Read-elimination flavor: the merge re-reads a field one path
        // already read.
        ctx.b.switch_to(bt);
        let r1 = ctx.b.load(shared.box_obj, shared.f_val);
        ctx.b.store(shared.sink, shared.f_n, r1);
        ctx.b.jump(latch);
        ctx.b.switch_to(bf);
        ctx.b.jump(latch);
        ctx.b.switch_to(latch);
        let r2 = ctx.b.load(shared.box_obj, shared.f_val);
        let masked = ctx.b.binop(dbds_ir::BinOp::And, r2, four);
        ctx.b.add(masked, acc_phi)
    } else {
        // Constant-folding flavor (Figure 1 inside hot code).
        ctx.b.switch_to(bt);
        ctx.b.jump(latch);
        ctx.b.switch_to(bf);
        ctx.b.jump(latch);
        ctx.b.switch_to(latch);
        let phi = ctx.b.phi(vec![acc_phi, zero], Type::Int);
        ctx.b.add(phi, four)
    };
    let acc_next = ctx.b.add(stepped, i);
    let i_next = ctx.b.add(i, one);
    {
        let g = ctx.b.graph_mut();
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = i_next;
        }
        if let Inst::Phi { inputs } = g.inst_mut(acc_phi) {
            inputs[1] = acc_next;
        }
    }
    ctx.b.switch_to(exit);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    acc_phi
}

/// An interpreter-style dispatch chain: `op = acc & 3` selects one of
/// three handlers; each handler pins a constant into the join φ, and the
/// dispatch tail re-tests the φ — decidable only after duplication.
fn emit_dispatch(ctx: &mut FragmentCtx<'_>) -> InstId {
    let three = ctx.b.iconst(3);
    let zero = ctx.b.iconst(0);
    let one = ctx.b.iconst(1);
    let k0 = ctx.b.iconst(ctx.rng.random_range(16..32));
    let k1 = ctx.b.iconst(ctx.rng.random_range(32..48));
    let op = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, three);

    let h0 = ctx.b.new_block();
    let t1 = ctx.b.new_block();
    let h1 = ctx.b.new_block();
    let h2 = ctx.b.new_block();
    let join = ctx.b.new_block();

    let is0 = ctx.b.cmp(CmpOp::Eq, op, zero);
    ctx.b.branch(is0, h0, t1, 0.25);
    ctx.b.switch_to(h0);
    ctx.b.jump(join);
    ctx.b.switch_to(t1);
    let is1 = ctx.b.cmp(CmpOp::Eq, op, one);
    ctx.b.branch(is1, h1, h2, 0.33);
    ctx.b.switch_to(h1);
    ctx.b.jump(join);
    ctx.b.switch_to(h2);
    ctx.b.jump(join);

    // Join over the three handlers, then the re-test of the dispatched
    // value — the conditional-elimination target.
    ctx.b.switch_to(join);
    let d = ctx.b.phi(vec![k0, k1, ctx.acc], Type::Int);
    let again = ctx.b.cmp(CmpOp::Eq, d, k0);
    let (ba, bb, tail) = diamond(ctx, again, 0.25);
    ctx.b.switch_to(ba);
    let fast = ctx.b.add(ctx.acc, one);
    ctx.b.jump(tail);
    ctx.b.switch_to(bb);
    let p = ctx.p();
    let slow = ctx.b.add(d, p);
    ctx.b.jump(tail);
    ctx.b.switch_to(tail);
    let t = ctx.b.phi(vec![fast, slow], Type::Int);
    let n = ctx.rng.random_range(2..6);
    let mixed = payload(ctx, t, n);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    mixed
}

/// An opaque call.
fn emit_invoke(ctx: &mut FragmentCtx<'_>) -> InstId {
    let p = ctx.p();
    let r = ctx.b.invoke(vec![ctx.acc, p]);
    let mask = ctx.b.iconst(0xfffff);
    ctx.b.binop(dbds_ir::BinOp::And, r, mask)
}

/// Array traffic: store then reload through a small scratch array.
fn emit_array(ctx: &mut FragmentCtx<'_>) -> InstId {
    let eight = ctx.b.iconst(8);
    let seven = ctx.b.iconst(7);
    let arr = ctx.b.new_array(eight);
    let ix = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, seven);
    ctx.b.astore(arr, ix, ctx.acc);
    let v = ctx.b.aload(arr, ix);
    let len = ctx.b.alength(arr);
    ctx.b.add(v, len)
}

/// Appends `n` arithmetic instructions that all fold transitively once
/// `seed` is a known constant — the branch-splitting payoff. Keyed on
/// the dispatched *value* (not the branch condition), so the baseline
/// assume-edge canonicalization cannot claim any of it without
/// duplication.
fn const_cascade(ctx: &mut FragmentCtx<'_>, seed: InstId, n: usize) -> InstId {
    let mut t = seed;
    for i in 0..n {
        let k = ctx.b.iconst(ctx.rng.random_range(2..8));
        t = match i % 3 {
            0 => ctx.b.add(t, k),
            1 => ctx.b.mul(t, k),
            _ => ctx.b.binop(dbds_ir::BinOp::Xor, t, k),
        };
    }
    t
}

/// Caps a fragment result to 16 bits and folds it into the running
/// accumulator from a fresh block (keeps interpreter values bounded
/// even though the cascades multiply).
fn bounded_acc(ctx: &mut FragmentCtx<'_>, t: InstId) -> InstId {
    let mask = ctx.b.iconst(0xffff);
    let bounded = ctx.b.binop(dbds_ir::BinOp::And, t, mask);
    let next = ctx.b.new_block();
    ctx.b.jump(next);
    ctx.b.switch_to(next);
    ctx.b.add(ctx.acc, bounded)
}

/// One cold diamond whose merge re-tests its own φ. Sized against the
/// default cost model so the trade-off prices the two flavors apart:
/// duplicating only the merge folds `cmp + branch` (2 cycles, and
/// `2 × 256 × p < payload` for cold `p ≤ 0.025` against the
/// 12-instruction payload), while continuing through the decided branch
/// adds the ~16-cycle cascade and clears the bar comfortably.
fn one_split_diamond(ctx: &mut FragmentCtx<'_>) -> InstId {
    let k = ctx.rng.random_range(16..24);
    let kc = ctx.b.iconst(k);
    let limit = ctx.b.iconst(k - 1);
    let fifteen = ctx.b.iconst(15);
    let masked = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, fifteen);
    let zero = ctx.b.iconst(0);
    let cond = ctx.b.cmp(CmpOp::Eq, masked, zero);
    let cold = ctx.rng.random_range(0.015..0.025);
    let (bt, bf, bm) = diamond(ctx, cond, cold);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    // φ inputs align with pred order [bt, bf]: the cold arm pins `k`.
    let p = ctx.b.phi(vec![kc, ctx.acc], Type::Int);
    let pay = payload(ctx, p, 12);
    let c2 = ctx.b.cmp(CmpOp::Gt, p, limit);
    let (bhit, bmiss, join) = diamond(ctx, c2, 0.5);
    ctx.b.switch_to(bhit);
    let chain = const_cascade(ctx, p, 12);
    ctx.b.jump(join);
    ctx.b.switch_to(bmiss);
    ctx.b.jump(join);
    ctx.b.switch_to(join);
    let t = ctx.b.phi(vec![chain, pay], Type::Int);
    bounded_acc(ctx, t)
}

/// Two chained instances of the cold re-testing diamond.
fn emit_diamond_chain(ctx: &mut FragmentCtx<'_>) -> InstId {
    ctx.acc = one_split_diamond(ctx);
    one_split_diamond(ctx)
}

/// Correlated conditionals: the merge's terminator tests `(φ & 7) ==
/// k & 7` — a predicate *derived* from the φ, true exactly when the
/// cold arm pinned `k`. Deciding it requires carrying the φ constant
/// through one arithmetic step, which only duplication provides.
fn emit_correlated_conditionals(ctx: &mut FragmentCtx<'_>) -> InstId {
    let k = ctx.rng.random_range(32..40);
    let kc = ctx.b.iconst(k);
    let seven = ctx.b.iconst(7);
    let low = ctx.b.iconst(k & 7);
    let thirty_one = ctx.b.iconst(31);
    let sel = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, thirty_one);
    let cond = ctx.b.cmp(CmpOp::Eq, sel, seven);
    let cold = ctx.rng.random_range(0.012..0.02);
    let (bt, bf, bm) = diamond(ctx, cond, cold);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let p = ctx.b.phi(vec![kc, ctx.acc], Type::Int);
    let pay = payload(ctx, p, 14);
    let derived = ctx.b.binop(dbds_ir::BinOp::And, p, seven);
    let c2 = ctx.b.cmp(CmpOp::Eq, derived, low);
    let (bhit, bmiss, join) = diamond(ctx, c2, 0.3);
    ctx.b.switch_to(bhit);
    let chain = const_cascade(ctx, derived, 12);
    ctx.b.jump(join);
    ctx.b.switch_to(bmiss);
    ctx.b.jump(join);
    ctx.b.switch_to(join);
    let t = ctx.b.phi(vec![chain, pay], Type::Int);
    bounded_acc(ctx, t)
}

/// A ladder of repeated tests of the same φ: `p > 9`, then `p > 17` —
/// on the cold arm (`p = k ∈ [24, 32)`) every rung is decided, so the
/// DST can extend through *two* folded branches, each rung adding its
/// own cascade (the strictly-increasing-benefit trim rule keeps both
/// hops).
fn emit_repeated_test_ladder(ctx: &mut FragmentCtx<'_>) -> InstId {
    let k = ctx.rng.random_range(24..32);
    let kc = ctx.b.iconst(k);
    let l1 = ctx.b.iconst(9);
    let l2 = ctx.b.iconst(17);
    let fifteen = ctx.b.iconst(15);
    let masked = ctx.b.binop(dbds_ir::BinOp::And, ctx.acc, fifteen);
    let zero = ctx.b.iconst(0);
    let cond = ctx.b.cmp(CmpOp::Eq, masked, zero);
    let cold = ctx.rng.random_range(0.015..0.022);
    let (bt, bf, bm) = diamond(ctx, cond, cold);
    ctx.b.switch_to(bt);
    ctx.b.jump(bm);
    ctx.b.switch_to(bf);
    ctx.b.jump(bm);
    ctx.b.switch_to(bm);
    let p = ctx.b.phi(vec![kc, ctx.acc], Type::Int);
    let pay = payload(ctx, p, 12);
    let c1 = ctx.b.cmp(CmpOp::Gt, p, l1);
    let r1 = ctx.b.new_block();
    let s1 = ctx.b.new_block();
    ctx.b.branch(c1, r1, s1, 0.5);
    // Rung 1: a short cascade, then the repeated test of the same φ.
    ctx.b.switch_to(r1);
    let v1 = const_cascade(ctx, p, 5);
    let c2 = ctx.b.cmp(CmpOp::Gt, p, l2);
    let r2 = ctx.b.new_block();
    let s2 = ctx.b.new_block();
    ctx.b.branch(c2, r2, s2, 0.5);
    // Rung 2 merges first (preds [r2, s2]), then the outer join
    // (preds [j2, s1]).
    ctx.b.switch_to(r2);
    let v2 = const_cascade(ctx, v1, 5);
    let j2 = ctx.b.new_block();
    ctx.b.jump(j2);
    ctx.b.switch_to(s2);
    ctx.b.jump(j2);
    ctx.b.switch_to(j2);
    let w2 = ctx.b.phi(vec![v2, v1], Type::Int);
    let j1 = ctx.b.new_block();
    ctx.b.jump(j1);
    ctx.b.switch_to(s1);
    ctx.b.jump(j1);
    ctx.b.switch_to(j1);
    let w1 = ctx.b.phi(vec![w2, pay], Type::Int);
    bounded_acc(ctx, w1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, Value};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (GraphBuilder, SharedState) {
        let mut t = ClassTable::new();
        let box_cls = t.add_class("Box");
        let f_val = t.add_field(box_cls, "val", Type::Int);
        let holder_cls = t.add_class("Holder");
        let f_ref = t.add_field(holder_cls, "r", Type::Ref(box_cls));
        let counter_cls = t.add_class("Counter");
        let f_n = t.add_field(counter_cls, "n", Type::Int);
        let mut b = GraphBuilder::new("frag", &[Type::Int, Type::Int, Type::Int], Arc::new(t));
        let p1 = b.param(1);
        let box_obj = b.new_object(box_cls);
        b.store(box_obj, f_val, p1);
        let inner = b.new_object(box_cls);
        let holder = b.new_object(holder_cls);
        b.store(holder, f_ref, inner);
        let sink = b.new_object(counter_cls);
        // Escape them all.
        b.invoke(vec![box_obj, holder, sink]);
        (
            b,
            SharedState {
                box_obj,
                holder,
                sink,
                f_val,
                f_ref,
                f_n,
                box_cls,
            },
        )
    }

    #[test]
    fn every_fragment_kind_builds_a_valid_graph() {
        for kind in FragmentKind::ALL {
            let (mut b, shared) = setup();
            let mut rng = SmallRng::seed_from_u64(42);
            let acc = b.param(0);
            let params = [b.param(0), b.param(1), b.param(2)];
            let new_acc = {
                let mut ctx = FragmentCtx {
                    b: &mut b,
                    rng: &mut rng,
                    acc,
                    params,
                    shared,
                };
                emit(kind, &mut ctx)
            };
            b.ret(Some(new_acc));
            let g = b.finish();
            verify(&g).unwrap_or_else(|e| panic!("{kind:?}: {e}\n{g}"));
            // Must execute without trapping on a few inputs.
            for args in [[3i64, 5, 7], [-4, 0, 1], [0, -9, 100]] {
                let vals: Vec<Value> = args.iter().map(|&a| Value::Int(a)).collect();
                let r = execute(&g, &vals);
                assert!(
                    r.outcome.is_ok(),
                    "{kind:?} trapped on {args:?}: {:?}",
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn fragments_are_deterministic() {
        let build = || {
            let (mut b, shared) = setup();
            let mut rng = SmallRng::seed_from_u64(7);
            let acc = b.param(0);
            let params = [b.param(0), b.param(1), b.param(2)];
            let new_acc = {
                let mut ctx = FragmentCtx {
                    b: &mut b,
                    rng: &mut rng,
                    acc,
                    params,
                    shared,
                };
                emit(FragmentKind::Bloat, &mut ctx)
            };
            b.ret(Some(new_acc));
            b.finish()
        };
        let g1 = build();
        let g2 = build();
        assert_eq!(dbds_ir::print_graph(&g1), dbds_ir::print_graph(&g2));
    }

    #[test]
    fn hot_loop_terminates_and_counts_iterations() {
        let (mut b, shared) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let acc = b.param(0);
        let params = [b.param(0), b.param(1), b.param(2)];
        let new_acc = {
            let mut ctx = FragmentCtx {
                b: &mut b,
                rng: &mut rng,
                acc,
                params,
                shared,
            };
            emit(FragmentKind::HotLoop, &mut ctx)
        };
        b.ret(Some(new_acc));
        let g = b.finish();
        verify(&g).unwrap();
        let r = execute(&g, &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(r.outcome.is_ok());
        // The loop ran: plenty of branch executions.
        assert!(r.counts.get(dbds_ir::InstKind::Branch) > 5);
    }
}
