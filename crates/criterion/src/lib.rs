//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`/
//! `bench_function`, [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is honest but simple: each benchmark closure is warmed up
//! once, then timed for `sample_size` samples; mean, min and max wall
//! times are printed. No statistics engine, HTML reports, or comparison
//! baselines — the goal is that `cargo bench` runs and reports real
//! numbers offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput specification for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-iteration timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: target ~10ms of work per sample.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let reps = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        self.elapsed = t.elapsed();
        self.iters = reps;
    }

    fn per_iter_ns(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the group's throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        let throughput = self.throughput;
        self.criterion
            .run_samples(&full, samples, throughput, |b| f(b, input));
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        let throughput = self.throughput;
        self.criterion
            .run_samples(&full, samples, throughput, &mut f);
        self
    }

    /// Finishes the group (printing was done incrementally).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Builder no-op kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_samples(&name.to_string(), 10, None, &mut f);
        self
    }

    fn run_samples<F>(
        &mut self,
        name: &str,
        samples: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher::default();
            f(&mut b);
            times.push(b.per_iter_ns());
        }
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let thr = match throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>12.2} Kelem/s", n as f64 / mean * 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>12.2} MB/s", n as f64 / mean * 1e3)
            }
            _ => String::new(),
        };
        println!(
            "{name:<52} time: [{} {} {}]{}",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            thr
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| b.iter(|| x + 1));
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
