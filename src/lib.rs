//! # dbds — Dominance-Based Duplication Simulation
//!
//! A from-scratch Rust reproduction of *"Dominance-Based Duplication
//! Simulation (DBDS): Code Duplication to Enable Compiler Optimizations"*
//! (Leopoldseder et al., CGO 2018): a compiler optimization phase that
//! decides — by *simulating* duplications on a synonym map instead of
//! performing them — which control-flow merges are worth tail-duplicating
//! so that constant folding, conditional elimination, partial escape
//! analysis, read elimination and strength reduction become applicable.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `dbds-ir` | SSA CFG, builder, verifier, text format, interpreter |
//! | [`analysis`] | `dbds-analysis` | dominators, loops, block frequencies, stamps |
//! | [`costmodel`] | `dbds-costmodel` | per-node cycle/size table, static performance estimator |
//! | [`opt`] | `dbds-opt` | applicability checks + action steps, canonicalize, scalar replacement, DCE, CFG simplify, SSA repair |
//! | [`core`] | `dbds-core` | the DBDS simulation / trade-off / optimization tiers, backtracking and dupalot baselines |
//! | [`backend`] | `dbds-backend` | liveness, linear-scan register allocation, machine-code emission |
//! | [`workloads`] | `dbds-workloads` | the synthetic Java DaCapo / Scala DaCapo / micro / Octane suites |
//! | [`harness`] | `dbds-harness` | the evaluation reproducing the paper's Figures 5–8 |
//!
//! # Quick start
//!
//! Run the paper's Figure 1 end to end — build the diamond with the φ,
//! let DBDS discover and perform the duplication, and check both paths:
//!
//! ```
//! use dbds::core::{compile, DbdsConfig, OptLevel};
//! use dbds::costmodel::CostModel;
//! use dbds::ir::{execute, parse_module, Value};
//!
//! let mut graph = parse_module(
//!     "func @foo(x: int) {\n\
//!      entry:\n\
//!        zero: int = const 0\n\
//!        c: bool = cmp gt x, zero\n\
//!        branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n\
//!        p: int = phi [bt: x, bf: zero]\n\
//!        two: int = const 2\n\
//!        sum: int = add two, p\n\
//!        return sum\n\
//!      }",
//! )?
//! .graphs
//! .remove(0);
//!
//! let stats = compile(
//!     &mut graph,
//!     &CostModel::new(),
//!     OptLevel::Dbds,
//!     &DbdsConfig::default(),
//! );
//! assert!(stats.duplications >= 1);
//! assert_eq!(execute(&graph, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
//! assert_eq!(execute(&graph, &[Value::Int(-3)]).outcome, Ok(Value::Int(2)));
//! # Ok::<(), dbds::ir::ParseError>(())
//! ```
//!
//! # Reproducing the evaluation
//!
//! ```text
//! cargo run -p dbds-harness --bin figures --release -- --all
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every figure.

#![warn(missing_docs)]

/// The SSA intermediate representation (re-export of `dbds-ir`).
pub mod ir {
    pub use dbds_ir::*;
}

/// Control-flow analyses (re-export of `dbds-analysis`).
pub mod analysis {
    pub use dbds_analysis::*;
}

/// The node cost model (re-export of `dbds-costmodel`).
pub mod costmodel {
    pub use dbds_costmodel::*;
}

/// Optimizations as applicability checks and action steps (re-export of
/// `dbds-opt`).
pub mod opt {
    pub use dbds_opt::*;
}

/// The DBDS algorithm itself (re-export of `dbds-core`).
pub mod core {
    pub use dbds_core::*;
}

/// The compiler back end (re-export of `dbds-backend`).
pub mod backend {
    pub use dbds_backend::*;
}

/// The synthetic benchmark suites (re-export of `dbds-workloads`).
pub mod workloads {
    pub use dbds_workloads::*;
}

/// The evaluation harness (re-export of `dbds-harness`).
pub mod harness {
    pub use dbds_harness::*;
}
