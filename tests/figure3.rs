//! Integration test: the paper's Figure 3 worked example, across crates.
//!
//! Program `f` (§4.1) divides `x` by `φ(x, 2)`. The simulation must
//! report CS = 31 on the constant path (division 32 cycles → shift 1
//! cycle), the trade-off must accept, and the optimization tier must
//! produce Figure 3e.

use dbds::analysis::{AnalysisCache, DomTree, LoopForest};
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_module, verify, BinOp, Graph, Inst, Value};
use dbds::opt::OptKind;

const PROGRAM_F: &str = r#"
    func @f(a: int, b: int, x: int) {
    entry:
      zero: int = const 0
      guard: bool = cmp ge x, zero
      branch guard, bg, bdeopt, prob 0.999
    bdeopt:
      deopt
    bg:
      two: int = const 2
      c: bool = cmp gt a, b
      branch c, bp1, bp2, prob 0.5
    bp1:
      jump bm
    bp2:
      jump bm
    bm:
      p: int = phi [bp1: x, bp2: two]
      q: int = div x, p
      return q
    }
"#;

fn program_f() -> Graph {
    parse_module(PROGRAM_F).unwrap().graphs.remove(0)
}

#[test]
fn simulation_reports_cs_31_on_the_constant_path() {
    let g = program_f();
    let model = CostModel::new();
    let results = simulate(&g, &model, &mut AnalysisCache::new());
    // Two predecessor→merge pairs, as in Figure 3c.
    assert_eq!(results.len(), 2);
    let best = results
        .iter()
        .max_by(|a, b| a.cycles_saved.partial_cmp(&b.cycles_saved).unwrap())
        .unwrap();
    assert_eq!(best.cycles_saved, 31.0, "CS = 32 − 1 = 31 (§4.1)");
    assert_eq!(best.opportunities.len(), 1);
    assert_eq!(best.opportunities[0].kind, OptKind::StrengthReduce);
}

#[test]
fn simulation_traversal_follows_the_dominator_tree() {
    let g = program_f();
    let dt = DomTree::compute(&g);
    // The merge is dominated by the split block, not by either
    // predecessor — the reason the DST must "pretend" dominance.
    let merge = g.merge_blocks()[0];
    let preds: Vec<_> = g.preds(merge).to_vec();
    for p in &preds {
        assert!(!dt.dominates(*p, merge));
        assert_eq!(dt.idom(merge), dt.idom(*p));
    }
    let _ = LoopForest::compute(&g, &dt);
}

#[test]
fn optimization_tier_produces_figure_3e() {
    let mut g = program_f();
    let model = CostModel::new();
    let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&g).unwrap();
    assert!(stats.duplications >= 1);
    // Figure 3e: a right shift on one path, the division on the other.
    let insts: Vec<&Inst> = g
        .reachable_blocks()
        .into_iter()
        .flat_map(|b| g.block_insts(b).to_vec())
        .map(|i| g.inst(i))
        .collect();
    assert!(
        insts
            .iter()
            .any(|i| matches!(i, Inst::Binary { op: BinOp::Shr, .. })),
        "expected x >> 1 on the constant path"
    );
    assert!(
        insts
            .iter()
            .any(|i| matches!(i, Inst::Binary { op: BinOp::Div, .. })),
        "the x/x path keeps its division"
    );
}

#[test]
fn all_configurations_compute_the_same_results() {
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let reference = program_f();
    for level in [
        OptLevel::Baseline,
        OptLevel::Dbds,
        OptLevel::Dupalot,
        OptLevel::Backtracking,
    ] {
        let mut g = program_f();
        compile(&mut g, &model, level, &cfg);
        verify(&g).unwrap();
        for (a, b, x) in [
            (5i64, 3i64, 12i64),
            (1, 3, 12),
            (0, 0, 0),
            (2, 1, 7),
            (9, 9, 100),
        ] {
            let args = [Value::Int(a), Value::Int(b), Value::Int(x)];
            assert_eq!(
                execute(&g, &args).outcome,
                execute(&reference, &args).outcome,
                "{level:?} diverged on f({a}, {b}, {x})"
            );
        }
    }
}
