//! Property-based tests (proptest) over randomly generated programs.
//!
//! The generator of `dbds-workloads` is itself seeded, so a random seed
//! plus random profile knobs gives an unbounded family of well-formed
//! programs to throw at the optimizer, the duplication transform, the
//! printer/parser and the back end.

use dbds::analysis::AnalysisCache;
use dbds::backend::compile_to_machine_code;
use dbds::core::{compile, duplicate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_graph, print_graph, verify, Value};
use dbds::opt::optimize_full;
use dbds::workloads::{generate_graph, FragmentKind, Profile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        2usize..10,
        proptest::collection::vec(0.05f64..1.0, FragmentKind::ALL.len()),
    )
        .prop_map(|(count, weights)| Profile {
            fragments: (count, count + 4),
            weights: FragmentKind::ALL.iter().copied().zip(weights).collect(),
            input_sets: 2,
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-2_000i64..2_000, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated program is well-formed and executes trap-free.
    #[test]
    fn generated_programs_are_wellformed(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs()) {
        let g = generate_graph("prop", &profile, seed);
        verify(&g).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        let r = execute(&g, &args);
        prop_assert!(r.outcome.is_ok(), "trapped: {:?}", r.outcome);
    }

    /// The textual format round-trips: parsing preserves semantics, and
    /// one print→parse pass normalizes value numbering to a fixpoint.
    #[test]
    fn print_parse_roundtrip(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs()) {
        let g = generate_graph("prop", &profile, seed);
        let g2 = parse_graph(&print_graph(&g), g.class_table().clone()).unwrap();
        verify(&g2).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        prop_assert_eq!(execute(&g, &args).outcome, execute(&g2, &args).outcome);
        // print ∘ parse is idempotent (it renumbers values canonically).
        let normalized = print_graph(&g2);
        let g3 = parse_graph(&normalized, g.class_table().clone()).unwrap();
        prop_assert_eq!(normalized, print_graph(&g3));
    }

    /// The full optimization pipeline preserves observable behaviour.
    #[test]
    fn optimize_full_preserves_semantics(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs()) {
        let g = generate_graph("prop", &profile, seed);
        let mut opt = g.clone();
        optimize_full(&mut opt, &mut AnalysisCache::new());
        verify(&opt).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        prop_assert_eq!(execute(&g, &args).outcome, execute(&opt, &args).outcome);
    }

    /// Duplicating ANY single predecessor→merge pair preserves semantics
    /// and SSA validity — the transform is universally sound, not only on
    /// the pairs DBDS happens to pick.
    #[test]
    fn any_single_duplication_is_sound(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs(), pick in 0usize..64) {
        let g = generate_graph("prop", &profile, seed);
        let pairs: Vec<(dbds::ir::BlockId, dbds::ir::BlockId)> = g
            .merge_blocks()
            .into_iter()
            .flat_map(|m| g.preds(m).iter().map(move |&p| (p, m)).collect::<Vec<_>>())
            .filter(|&(p, m)| p != m)
            .collect();
        prop_assume!(!pairs.is_empty());
        let (pred, merge) = pairs[pick % pairs.len()];
        let mut dup = g.clone();
        duplicate(&mut dup, pred, merge);
        verify(&dup).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        prop_assert_eq!(execute(&g, &args).outcome, execute(&dup, &args).outcome);
    }

    /// The full DBDS phase preserves semantics and never worsens the
    /// dynamic cycle count.
    #[test]
    fn dbds_preserves_semantics_and_never_regresses(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs()) {
        let g = generate_graph("prop", &profile, seed);
        let model = CostModel::new();
        let mut opt = g.clone();
        compile(&mut opt, &model, OptLevel::Dbds, &DbdsConfig::default());
        verify(&opt).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        let before = execute(&g, &args);
        let after = execute(&opt, &args);
        prop_assert_eq!(before.outcome, after.outcome);
        prop_assert!(
            model.dynamic_cycles(&after.counts) <= model.dynamic_cycles(&before.counts)
        );
    }

    /// Path-based duplication (the §8 extension) is as sound as the
    /// shipped single-merge mode on random programs.
    #[test]
    fn path_duplication_preserves_semantics(seed in 0u64..1_000_000, profile in arb_profile(), input in arb_inputs(), path_len in 2usize..4) {
        let g = generate_graph("prop", &profile, seed);
        let model = CostModel::new();
        let cfg = DbdsConfig {
            max_path_length: path_len,
            ..DbdsConfig::default()
        };
        let mut opt = g.clone();
        compile(&mut opt, &model, OptLevel::Dbds, &cfg);
        verify(&opt).unwrap();
        let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
        prop_assert_eq!(execute(&g, &args).outcome, execute(&opt, &args).outcome);
    }

    /// The parser never panics, no matter how mangled the input: it
    /// either produces a module or a positioned error.
    #[test]
    fn parser_never_panics_on_mangled_input(
        seed in 0u64..100_000,
        profile in arb_profile(),
        cut in 0usize..4_000,
        flips in proptest::collection::vec((0usize..4_000, 0u8..128), 0..8),
    ) {
        let g = generate_graph("prop", &profile, seed);
        let mut text = print_graph(&g).into_bytes();
        if !text.is_empty() {
            text.truncate(cut.min(text.len()).max(1));
            for (pos, byte) in flips {
                let ix = pos % text.len();
                text[ix] = byte.max(b' ' - 22); // keep it roughly printable
            }
        }
        let mangled = String::from_utf8_lossy(&text).into_owned();
        // Must not panic; outcome (Ok/Err) is irrelevant.
        let _ = dbds::ir::parse_module(&mangled);
    }

    /// The back end emits deterministic code for every generated program.
    #[test]
    fn backend_is_deterministic(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("prop", &profile, seed);
        let a = compile_to_machine_code(&g);
        let b = compile_to_machine_code(&g);
        prop_assert!(a.size() > 0);
        prop_assert_eq!(a.bytes, b.bytes);
    }
}
