//! Integration test: the Figure 4 node-cost-model example.
//!
//! The merge block `[φ, Mul, Store, Return]` must cost exactly 14 cycles
//! under the default table, and the simulation of the 90% predecessor
//! must discover the constant fold of the multiplication — the mechanics
//! behind Figure 4's `14 → 12.2` cycle computation.

use dbds::analysis::AnalysisCache;
use dbds::core::simulate;
use dbds::costmodel::{CostModel, NodeCost};
use dbds::ir::{verify, ClassTable, GraphBuilder, InstKind, Type};
use dbds::opt::OptKind;
use std::sync::Arc;

fn figure4() -> (
    dbds::ir::Graph,
    dbds::ir::BlockId,
    dbds::ir::BlockId,
    dbds::ir::BlockId,
) {
    let mut t = ClassTable::new();
    let cls = t.add_class("Sink");
    let field = t.add_field(cls, "s", Type::Int);
    let mut b = GraphBuilder::new(
        "fig4",
        &[Type::Int, Type::Bool, Type::Ref(cls)],
        Arc::new(t),
    );
    let p0 = b.param(0);
    let cond = b.param(1);
    let obj = b.param(2);
    let three = b.iconst(3);
    let (b1, b2, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(cond, b1, b2, 0.9);
    b.switch_to(b1);
    b.jump(bm);
    b.switch_to(b2);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![three, p0], Type::Int);
    let mul = b.mul(phi, three);
    b.store(obj, field, mul);
    b.ret(Some(mul));
    let g = b.finish();
    verify(&g).unwrap();
    (g, b1, b2, bm)
}

#[test]
fn merge_block_costs_14_cycles() {
    let (g, _, _, bm) = figure4();
    let model = CostModel::new();
    // φ(0) + mul(2) + store(10) + return(2) = 14 — the left half of
    // Figure 4.
    assert_eq!(model.block_cycles(&g, bm), 14);
}

#[test]
fn hot_predecessor_folds_the_multiplication() {
    let (g, b1, b2, _) = figure4();
    let model = CostModel::new();
    let results = simulate(&g, &model, &mut AnalysisCache::new());
    let hot = results.iter().find(|r| r.pred == b1).unwrap();
    // φ → 3, so 3 * 3 constant-folds: CS = cycles(Mul) = 2. The weighted
    // saving 0.9 × 2 = 1.8 is Figure 4's "14 → 12.2".
    assert_eq!(hot.cycles_saved, 2.0);
    assert_eq!(hot.opportunities.len(), 1);
    assert_eq!(hot.opportunities[0].kind, OptKind::ConstantFold);
    assert!((hot.probability - 0.9).abs() < 1e-9);
    assert!((hot.weighted_benefit() - 1.8).abs() < 1e-9);
    // The cold predecessor has nothing: param0 * 3 does not fold.
    let cold = results.iter().find(|r| r.pred == b2).unwrap();
    assert!(cold.opportunities.is_empty());
}

#[test]
fn cost_table_is_overridable() {
    let (g, b1, _, _) = figure4();
    let mut model = CostModel::new();
    // Pretend multiplications are free: the opportunity disappears from
    // the benefit (CS = 0).
    model.set_cost(InstKind::Mul, NodeCost::new(0, 1));
    let results = simulate(&g, &model, &mut AnalysisCache::new());
    let hot = results.iter().find(|r| r.pred == b1).unwrap();
    assert_eq!(hot.cycles_saved, 0.0);
}
