//! Differential testing across the whole stack: every synthetic
//! benchmark, compiled under every configuration, must compute exactly
//! the outcomes of the unoptimized graph — and every optimized graph must
//! verify and go through the back end.

use dbds::backend::compile_to_machine_code;
use dbds::core::{compile, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, verify};
use dbds::workloads::Suite;

fn check_suite(suite: Suite, levels: &[OptLevel]) {
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    for w in suite.workloads() {
        let reference: Vec<_> = w
            .inputs
            .iter()
            .map(|i| execute(&w.graph, i).outcome)
            .collect();
        for &level in levels {
            let mut g = w.graph.clone();
            compile(&mut g, &model, level, &cfg);
            verify(&g).unwrap_or_else(|e| {
                panic!("{}/{} under {}: {e}", suite.id(), w.name, level.name())
            });
            let outcomes: Vec<_> = w.inputs.iter().map(|i| execute(&g, i).outcome).collect();
            assert_eq!(
                outcomes,
                reference,
                "{}/{} under {} changed observable behaviour",
                suite.id(),
                w.name,
                level.name()
            );
            // The back end must handle every optimized graph.
            let mc = compile_to_machine_code(&g);
            assert!(mc.size() > 0);
        }
    }
}

#[test]
fn micro_suite_all_levels() {
    check_suite(
        Suite::Micro,
        &[
            OptLevel::Baseline,
            OptLevel::Dbds,
            OptLevel::Dupalot,
            OptLevel::Backtracking,
        ],
    );
}

#[test]
fn java_dacapo_suite() {
    check_suite(
        Suite::JavaDaCapo,
        &[OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot],
    );
}

#[test]
fn scala_dacapo_suite() {
    check_suite(
        Suite::ScalaDaCapo,
        &[OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot],
    );
}

#[test]
fn octane_suite() {
    check_suite(
        Suite::Octane,
        &[OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot],
    );
}

#[test]
fn dbds_never_increases_dynamic_cycles() {
    // Tail duplication specializes paths; the interpreter can only ever
    // execute the same or fewer priced cycles afterwards.
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    for suite in [Suite::Micro, Suite::ScalaDaCapo] {
        for w in suite.workloads() {
            let mut g = w.graph.clone();
            compile(&mut g, &model, OptLevel::Dbds, &cfg);
            for input in &w.inputs {
                let before = model.dynamic_cycles(&execute(&w.graph, input).counts);
                let after = model.dynamic_cycles(&execute(&g, input).counts);
                assert!(
                    after <= before,
                    "{}/{}: {} cycles before, {} after",
                    suite.id(),
                    w.name,
                    before,
                    after
                );
            }
        }
    }
}
