//! Suite-level shape assertions: the qualitative claims of §6.2 that the
//! reproduction must uphold (who wins, and roughly how).

use dbds::core::{compile, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::harness::{run_suite, IcacheModel, Metric};
use dbds::workloads::Suite;
use std::time::Instant;

#[test]
fn micro_benefits_more_than_java_dacapo() {
    // §6.2: "The Octane suite and the micro benchmarks show the highest
    // peak performance increases … whereas benchmark suites such as Java
    // DaCapo benefit less from duplication."
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let ic = IcacheModel::default();
    let micro = run_suite(Suite::Micro, &model, &cfg, &ic);
    let java = run_suite(Suite::JavaDaCapo, &model, &cfg, &ic);
    let micro_peak = micro.geomean(OptLevel::Dbds, Metric::Peak);
    let java_peak = java.geomean(OptLevel::Dbds, Metric::Peak);
    assert!(
        micro_peak > java_peak,
        "micro {micro_peak:.2}% should beat java {java_peak:.2}%"
    );
    assert!(micro_peak > 0.0);

    // "not performing all duplication opportunities always results in
    // less code": dupalot grows code more than DBDS on both suites.
    for suite in [&micro, &java] {
        let dbds_size = suite.geomean(OptLevel::Dbds, Metric::CodeSize);
        let dup_size = suite.geomean(OptLevel::Dupalot, Metric::CodeSize);
        assert!(
            dup_size > dbds_size,
            "{:?}: dupalot size {dup_size:.2}% vs DBDS {dbds_size:.2}%",
            suite.suite
        );
    }
}

#[test]
fn suite_ordering_matches_the_paper() {
    // §6.2 orders the suites by DBDS peak improvement: Octane and micro
    // highest, Scala DaCapo in the middle, Java DaCapo least. Assert the
    // coarse ordering: {octane, micro} > scala > java.
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let ic = IcacheModel::default();
    let peak = |s: Suite| run_suite(s, &model, &cfg, &ic).geomean(OptLevel::Dbds, Metric::Peak);
    let java = peak(Suite::JavaDaCapo);
    let scala = peak(Suite::ScalaDaCapo);
    let micro = peak(Suite::Micro);
    let octane = peak(Suite::Octane);
    assert!(
        scala > java,
        "scala {scala:.2}% should beat java {java:.2}%"
    );
    assert!(
        micro > scala && octane > scala,
        "micro {micro:.2}% / octane {octane:.2}% should beat scala {scala:.2}%"
    );
    assert!(java > 0.0 && octane > 0.0, "all suites improve");
}

#[test]
fn backtracking_costs_an_order_of_magnitude_more_compile_time() {
    // §3.1: "the copy operation increased compilation time by a factor of
    // 10". We require at least 5× on the micro suite (wall-clock, so
    // leave slack).
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let mut dbds_total = 0.0f64;
    let mut back_total = 0.0f64;
    for w in Suite::Micro.workloads() {
        let mut g1 = w.graph.clone();
        let t0 = Instant::now();
        compile(&mut g1, &model, OptLevel::Dbds, &cfg);
        dbds_total += t0.elapsed().as_secs_f64();

        let mut g2 = w.graph.clone();
        let t1 = Instant::now();
        compile(&mut g2, &model, OptLevel::Backtracking, &cfg);
        back_total += t1.elapsed().as_secs_f64();
    }
    let ratio = back_total / dbds_total;
    assert!(
        ratio > 5.0,
        "backtracking should be ≫ slower than simulation, got {ratio:.1}x"
    );
}

#[test]
fn dupalot_does_strictly_more_work_than_dbds() {
    // The paper's compile-time claim in robust (non-wall-clock) terms:
    // dupalot performs more duplications and ships more code on every
    // suite level, so it necessarily spends more compile effort.
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let ic = IcacheModel::default();
    let micro = run_suite(Suite::Micro, &model, &cfg, &ic);
    let dbds_dups: usize = micro.rows.iter().map(|r| r.dbds.stats.duplications).sum();
    let dup_dups: usize = micro
        .rows
        .iter()
        .map(|r| r.dupalot.stats.duplications)
        .sum();
    assert!(
        dup_dups > dbds_dups,
        "dupalot performed {dup_dups} duplications vs DBDS {dbds_dups}"
    );
    // Wall clock over the whole suite (aggregated to dampen noise): the
    // trade-off must not make DBDS slower to compile than dupalot.
    let dbds_ns: u128 = micro.rows.iter().map(|r| r.dbds.compile_ns).sum();
    let dup_ns: u128 = micro.rows.iter().map(|r| r.dupalot.compile_ns).sum();
    assert!(
        dup_ns as f64 > dbds_ns as f64 * 0.8,
        "dupalot total {dup_ns} ns vs DBDS {dbds_ns} ns"
    );
}

#[test]
fn every_configuration_preserves_outcomes_on_micro() {
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let ic = IcacheModel::default();
    let micro = run_suite(Suite::Micro, &model, &cfg, &ic);
    for row in &micro.rows {
        assert!(row.outcomes_agree(), "{} diverged", row.name);
    }
}
