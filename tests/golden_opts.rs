//! Golden tests for the optimization pipeline: small textual IR programs
//! with assertions on the optimized output (FileCheck style). Each case
//! pins down one behaviour of the §2 optimization set or its cleanup
//! passes.

use dbds::analysis::AnalysisCache;
use dbds::ir::{execute, parse_module, print_graph, verify, Value};
use dbds::opt::optimize_full;

/// Parses, optimizes, verifies, and returns the printed result.
fn optimized(src: &str) -> String {
    let mut module = parse_module(src).expect("golden source parses");
    let g = &mut module.graphs[0];
    verify(g).expect("golden source verifies");
    optimize_full(g, &mut AnalysisCache::new());
    verify(g).expect("optimized graph verifies");
    print_graph(g)
}

#[test]
fn constant_folding_chain_collapses() {
    let out = optimized(
        "func @f() {\n\
         entry:\n  a: int = const 6\n  b: int = const 7\n  m: int = mul a, b\n\
           s: int = add m, m\n  return s\n}",
    );
    assert!(out.contains("const 84"), "{out}");
    assert!(!out.contains("mul"), "{out}");
    assert!(!out.contains("add"), "{out}");
}

#[test]
fn nested_dominated_condition_is_eliminated() {
    let out = optimized(
        "func @f(x: int) {\n\
         entry:\n  ten: int = const 10\n  c1: bool = cmp gt x, ten\n  branch c1, bt, bf, prob 0.5\n\
         bt:\n  five: int = const 5\n  c2: bool = cmp gt x, five\n  branch c2, byes, bno, prob 0.5\n\
         byes:\n  one: int = const 1\n  return one\n\
         bno:\n  two: int = const 2\n  return two\n\
         bf:\n  three: int = const 3\n  return three\n}",
    );
    // x > 10 implies x > 5: the inner branch folds and bno dies.
    assert!(
        !out.contains("cmp gt v0, v2") || out.matches("cmp").count() == 1,
        "{out}"
    );
    assert!(!out.contains("const 2"), "dead arm must disappear: {out}");
}

#[test]
fn guarded_division_strength_reduces() {
    let out = optimized(
        "func @f(x: int) {\n\
         entry:\n  zero: int = const 0\n  g: bool = cmp ge x, zero\n  branch g, ok, bad, prob 0.99\n\
         bad:\n  deopt\n\
         ok:\n  two: int = const 2\n  q: int = div x, two\n  return q\n}",
    );
    assert!(
        out.contains("shr"),
        "x/2 under x≥0 must become a shift: {out}"
    );
    assert!(!out.contains("div"), "{out}");
}

#[test]
fn unguarded_division_stays() {
    let out = optimized(
        "func @f(x: int) {\n\
         entry:\n  two: int = const 2\n  q: int = div x, two\n  return q\n}",
    );
    assert!(out.contains("div"), "negative x breaks the shift: {out}");
}

#[test]
fn scalar_replacement_dissolves_local_box() {
    let out = optimized(
        "class Box { val: int }\n\
         func @f(x: int) {\n\
         entry:\n  b: ref Box = new Box\n  s: void = store b, Box.val, x\n\
           l: int = load b, Box.val\n  two: int = const 2\n  m: int = mul l, two\n  return m\n}",
    );
    assert!(!out.contains("new Box"), "{out}");
    assert!(!out.contains("store"), "{out}");
    assert!(!out.contains("load"), "{out}");
    assert!(out.contains("shl"), "mul by 2 also strength-reduces: {out}");
}

#[test]
fn escaping_box_survives() {
    let out = optimized(
        "class Box { val: int }\n\
         func @f(x: int) {\n\
         entry:\n  b: ref Box = new Box\n  s: void = store b, Box.val, x\n\
           r: int = invoke b\n  return r\n}",
    );
    assert!(out.contains("new Box"), "{out}");
    assert!(out.contains("store"), "{out}");
}

#[test]
fn redundant_read_in_extended_block_is_eliminated() {
    let out = optimized(
        "class A { x: int }\n\
         func @f(a: ref A) {\n\
         entry:\n  r1: int = load a, A.x\n  r2: int = load a, A.x\n\
           s: int = add r1, r2\n  return s\n}",
    );
    assert_eq!(out.matches("load").count(), 1, "{out}");
}

#[test]
fn call_blocks_read_elimination() {
    let out = optimized(
        "class A { x: int }\n\
         func @f(a: ref A) {\n\
         entry:\n  r1: int = load a, A.x\n  k: int = invoke a\n\
           r2: int = load a, A.x\n  s: int = add r1, r2\n  t: int = add s, k\n  return t\n}",
    );
    assert_eq!(out.matches("load").count(), 2, "{out}");
}

#[test]
fn gvn_dedups_dominated_expression() {
    let out = optimized(
        "func @f(x: int, y: int) {\n\
         entry:\n  a: int = add x, y\n  c: bool = cmp gt a, x\n  branch c, bt, bf, prob 0.5\n\
         bt:\n  b: int = add x, y\n  return b\n\
         bf:\n  d: int = add y, x\n  return d\n}",
    );
    // All three adds are the same value: one remains.
    assert_eq!(out.matches(" add ").count(), 1, "{out}");
}

#[test]
fn constant_branch_folds_and_dead_path_vanishes() {
    let out = optimized(
        "class A { x: int }\n\
         func @f(a: ref A) {\n\
         entry:\n  t: bool = const true\n  branch t, live, dead, prob 0.99\n\
         live:\n  one: int = const 1\n  return one\n\
         dead:\n  v: int = load a, A.x\n  return v\n}",
    );
    assert!(!out.contains("branch"), "{out}");
    assert!(!out.contains("load"), "{out}");
}

#[test]
fn phi_of_equal_inputs_copy_propagates() {
    let out = optimized(
        "func @f(x: int, c: bool) {\n\
         entry:\n  branch c, bt, bf, prob 0.5\n\
         bt:\n  jump bm\n\
         bf:\n  jump bm\n\
         bm:\n  p: int = phi [bt: x, bf: x]\n  one: int = const 1\n  s: int = add p, one\n  return s\n}",
    );
    assert!(!out.contains("phi"), "{out}");
}

#[test]
fn instanceof_on_fresh_allocation_folds_branch() {
    let out = optimized(
        "class A { }\nclass B { }\n\
         func @f() {\n\
         entry:\n  o: ref A = new A\n  t: bool = instanceof o, B\n  branch t, yes, no, prob 0.5\n\
         yes:\n  one: int = const 1\n  return one\n\
         no:\n  zero: int = const 0\n  return zero\n}",
    );
    assert!(!out.contains("instanceof"), "{out}");
    assert!(!out.contains("const 1"), "impossible arm removed: {out}");
}

#[test]
fn optimization_preserves_golden_semantics() {
    // Belt and braces: every golden program above computes the same
    // results before and after (spot-checked on one representative).
    let src = "func @f(x: int) {\n\
         entry:\n  zero: int = const 0\n  g: bool = cmp ge x, zero\n  branch g, ok, bad, prob 0.99\n\
         bad:\n  deopt\n\
         ok:\n  two: int = const 2\n  q: int = div x, two\n  return q\n}";
    let reference = parse_module(src).unwrap().graphs.remove(0);
    let mut opt = reference.clone();
    optimize_full(&mut opt, &mut AnalysisCache::new());
    for x in [0i64, 1, 7, 100, 12345] {
        assert_eq!(
            execute(&opt, &[Value::Int(x)]).outcome,
            execute(&reference, &[Value::Int(x)]).outcome
        );
    }
}
