//! Property-based tests for the lint framework: randomly generated
//! programs carry no error-severity diagnostics, and they stay that way
//! under randomly accepted duplications — the lint suite is stable under
//! the exact transformation DBDS performs.

use dbds::core::{compile, duplicate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{lint, BlockId, Severity};
use dbds::workloads::{generate_graph, FragmentKind, Profile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        2usize..10,
        proptest::collection::vec(0.05f64..1.0, FragmentKind::ALL.len()),
    )
        .prop_map(|(count, weights)| Profile {
            fragments: (count, count + 4),
            weights: FragmentKind::ALL.iter().copied().zip(weights).collect(),
            input_sets: 2,
        })
}

fn assert_error_free(g: &dbds::ir::Graph) {
    let report = lint(g);
    assert_eq!(
        report.error_count(),
        0,
        "error-severity diagnostics on a generated graph:\n{report}"
    );
    for d in report.diagnostics() {
        assert_eq!(d.severity, d.lint.severity());
        assert_eq!(d.severity, Severity::Warn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated program is lint-clean at error severity (hygiene
    /// warnings — critical edges and the like — are legitimate shapes).
    #[test]
    fn generated_programs_are_error_free(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("lintprop", &profile, seed);
        assert_error_free(&g);
    }

    /// Lint-clean graphs stay lint-clean under a random sequence of
    /// accepted duplications: each round picks an arbitrary live
    /// predecessor→merge pair and duplicates it, re-linting after every
    /// step.
    #[test]
    fn error_freedom_survives_random_duplications(
        seed in 0u64..1_000_000,
        profile in arb_profile(),
        picks in proptest::collection::vec(0usize..64, 1..4),
    ) {
        let mut g = generate_graph("lintprop", &profile, seed);
        assert_error_free(&g);
        for pick in picks {
            let pairs: Vec<(BlockId, BlockId)> = g
                .merge_blocks()
                .into_iter()
                .flat_map(|m| g.preds(m).iter().map(move |&p| (p, m)).collect::<Vec<_>>())
                .filter(|&(p, m)| p != m)
                .collect();
            if pairs.is_empty() {
                break;
            }
            let (pred, merge) = pairs[pick % pairs.len()];
            duplicate(&mut g, pred, merge);
            assert_error_free(&g);
        }
    }

    /// The full DBDS phase (which accepts candidates through the real
    /// trade-off tier) also preserves error-freedom.
    #[test]
    fn error_freedom_survives_the_dbds_phase(seed in 0u64..1_000_000, profile in arb_profile()) {
        let mut g = generate_graph("lintprop", &profile, seed);
        compile(&mut g, &CostModel::new(), OptLevel::Dbds, &DbdsConfig::default());
        assert_error_free(&g);
    }
}
