//! The §8 future-work extension: path-based duplication over multiple
//! merges. "The current optimization tier implementation cannot duplicate
//! over multiple merges along paths although the simulation tier can
//! simulate along paths" — this reproduction implements both sides,
//! gated by `DbdsConfig::max_path_length`.

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate_paths, DbdsConfig, OptLevel, TradeoffConfig};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_module, verify, Graph, Value};

/// Two chained merges: the constant from the first merge's φ only pays
/// off in the *second* merge's block.
///
///   if (c0) { if (c1) p = x; else p = 13; q = φ(p…)… } else q = 0
///   return q + 12   (folds only when q is pinned through BOTH merges)
const CHAINED: &str = r#"
    func @chained(x: int, c0: bool, c1: bool) {
    entry:
      zero: int = const 0
      thirteen: int = const 13
      twelve: int = const 12
      branch c0, left, right, prob 0.7
    left:
      branch c1, bt1, bf1, prob 0.5
    bt1:
      jump m1
    bf1:
      jump m1
    m1:
      p: int = phi [bt1: x, bf1: thirteen]
      jump m2
    right:
      jump m2
    m2:
      q: int = phi [m1: p, right: zero]
      r: int = add q, twelve
      s: int = mul r, r
      return s
    }
"#;

fn chained() -> Graph {
    parse_module(CHAINED).unwrap().graphs.remove(0)
}

#[test]
fn path_simulation_finds_more_than_single_merge_simulation() {
    let g = chained();
    let model = CostModel::new();

    // Identify bf1: the predecessor of m1 whose φ input is the constant.
    let m1 = g
        .merge_blocks()
        .into_iter()
        .find(|&m| {
            matches!(g.terminator(m), dbds::ir::Terminator::Jump { .. })
                && g.succs(m).iter().all(|&s| g.is_merge(s))
        })
        .expect("m1 present");

    // With path length 1, the DSTs into m1 stop at its jump: m1's body is
    // just the φ, so no benefit is visible from bf1.
    let single = simulate_paths(&g, &model, &mut AnalysisCache::new(), 1);
    let single_from_m1_preds = single
        .iter()
        .filter(|r| r.merge == m1)
        .map(|r| r.cycles_saved)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(
        single_from_m1_preds, 0.0,
        "single-merge simulation cannot see past m1's jump"
    );

    // With path length 2, the DST continues through m1 into m2, where
    // q ↦ p ↦ 13 lets the add and the mul fold.
    let paths = simulate_paths(&g, &model, &mut AnalysisCache::new(), 2);
    assert!(
        paths.iter().any(|r| r.path.len() == 2),
        "expected at least one two-merge path candidate"
    );
    let path_best = paths
        .iter()
        .filter(|r| r.merge == m1 && r.path.len() == 2)
        .map(|r| r.cycles_saved)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        path_best >= 3.0,
        "the m1→m2 path should fold the add and the mul, got {path_best}"
    );

    // Every prefix is still reported, so the trade-off can choose.
    for r in &paths {
        assert!(!r.path.is_empty());
        assert_eq!(r.path[0], r.merge);
    }
}

#[test]
fn path_duplication_transform_preserves_semantics() {
    let model = CostModel::new();
    let reference = chained();
    for path_len in [1usize, 2, 3] {
        let cfg = DbdsConfig {
            max_path_length: path_len,
            tradeoff: TradeoffConfig {
                // The test unit is tiny; loosen the growth budget so the
                // path candidates actually run.
                size_increase_budget: 3.0,
                ..TradeoffConfig::default()
            },
            ..DbdsConfig::default()
        };
        let mut g = chained();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        verify(&g).unwrap();
        assert!(stats.duplications >= 1, "path_len {path_len}: {stats:?}");
        for x in [-9i64, 0, 5, 100] {
            for c0 in [false, true] {
                for c1 in [false, true] {
                    let args = [Value::Int(x), Value::Bool(c0), Value::Bool(c1)];
                    assert_eq!(
                        execute(&g, &args).outcome,
                        execute(&reference, &args).outcome,
                        "path_len {path_len}, args {args:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn longer_paths_enable_strictly_more_folding() {
    // With path duplication enabled, the bf1 path should collapse all the
    // way: 13 is pinned through both merges, so (13+12)^2 = 625 appears
    // as a constant.
    let model = CostModel::new();
    let cfg = DbdsConfig {
        max_path_length: 2,
        tradeoff: TradeoffConfig {
            size_increase_budget: 3.0,
            ..TradeoffConfig::default()
        },
        ..DbdsConfig::default()
    };
    let mut g = chained();
    compile(&mut g, &model, OptLevel::Dbds, &cfg);
    verify(&g).unwrap();
    let has_625 = g
        .reachable_blocks()
        .into_iter()
        .flat_map(|b| g.block_insts(b).to_vec())
        .any(|i| {
            matches!(
                g.inst(i),
                dbds::ir::Inst::Const(dbds::ir::ConstValue::Int(625))
            )
        });
    assert!(has_625, "expected the fully folded constant 625:\n{g}");

    // Dynamic check: on the bf1 path the optimized graph must execute
    // strictly fewer cycles than with single-merge duplication.
    let mut single = chained();
    let cfg1 = DbdsConfig {
        max_path_length: 1,
        tradeoff: TradeoffConfig {
            size_increase_budget: 3.0,
            ..TradeoffConfig::default()
        },
        ..DbdsConfig::default()
    };
    compile(&mut single, &model, OptLevel::Dbds, &cfg1);
    let args = [Value::Int(5), Value::Bool(true), Value::Bool(false)];
    let cycles_path = model.dynamic_cycles(&execute(&g, &args).counts);
    let cycles_single = model.dynamic_cycles(&execute(&single, &args).counts);
    assert!(
        cycles_path <= cycles_single,
        "path duplication should not execute more cycles ({cycles_path} vs {cycles_single})"
    );
}
