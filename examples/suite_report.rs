//! A miniature end-to-end evaluation run: compiles the micro-benchmark
//! suite under all three configurations and prints the Figure-7-style
//! table plus the backtracking comparison for one benchmark.
//!
//! (The full evaluation lives in the harness binary:
//! `cargo run -p dbds-harness --bin figures --release -- --all`.)
//!
//! ```text
//! cargo run --release --example suite_report
//! ```

use dbds::core::{compile, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::harness::{format_figure, run_suite, IcacheModel};
use dbds::workloads::Suite;
use std::time::Instant;

fn main() {
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let icache = IcacheModel::default();

    let result = run_suite(Suite::Micro, &model, &cfg, &icache);
    print!("{}", format_figure(&result));

    // All configurations must agree on every benchmark's outcomes — the
    // end-to-end correctness check.
    for row in &result.rows {
        assert!(row.outcomes_agree(), "{} diverged", row.name);
    }
    println!(
        "\nall {} benchmarks agree across configurations ✓",
        result.rows.len()
    );

    // One §3.1-style data point: backtracking vs simulation on the first
    // benchmark.
    let w = &Suite::Micro.workloads()[0];
    let mut g1 = w.graph.clone();
    let t0 = Instant::now();
    compile(&mut g1, &model, OptLevel::Dbds, &cfg);
    let dbds_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut g2 = w.graph.clone();
    let t1 = Instant::now();
    compile(&mut g2, &model, OptLevel::Backtracking, &cfg);
    let back_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "\n{}: DBDS compiled in {dbds_ms:.2} ms, backtracking in {back_ms:.2} ms ({:.1}x)",
        w.name,
        back_ms / dbds_ms
    );
}
