//! Listings 5–6 of the paper: read elimination via duplication.
//!
//! ```java
//! class A { int x; }
//! static int s;
//! int foo(A a, int i) {
//!     if (i > 0) { s = a.x; /* Read1 */ } else { s = 0; }
//!     return a.x;          /* Read2 */
//! }
//! ```
//!
//! `Read2` is only *partially* redundant: redundant when the true branch
//! ran, not when the false branch did. Duplicating `Read2` into both
//! predecessors makes it fully redundant in the true branch, where it
//! collapses onto `Read1` (Listing 6).
//!
//! ```text
//! cargo run --example read_elimination
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{
    execute_with_heap, parse_module, print_graph, verify, Heap, Inst, Value, DEFAULT_FUEL,
};
use dbds::opt::OptKind;

const LISTING5: &str = r#"
    class A { x: int }
    class S { s: int }
    func @foo(a: ref A, i: int, statics: ref S) {
    entry:
      zero: int = const 0
      c: bool = cmp gt i, zero
      branch c, bt, bf, prob 0.5
    bt:
      read1: int = load a, A.x
      st1: void = store statics, S.s, read1
      jump bm
    bf:
      st2: void = store statics, S.s, zero
      jump bm
    bm:
      read2: int = load a, A.x
      return read2
    }
"#;

fn main() {
    let module = parse_module(LISTING5).expect("listing 5 parses");
    let table = module.class_table.clone();
    let mut graph = module.graphs.into_iter().next().unwrap();
    verify(&graph).unwrap();
    println!("=== Listing 5 ===\n{}", print_graph(&graph));

    let model = CostModel::new();
    for r in simulate(&graph, &model, &mut AnalysisCache::new()) {
        let re = r.opportunities.iter().any(|o| o.kind == OptKind::ReadElim);
        println!(
            "pred {} → merge {}: CS {:.1}{}",
            r.pred,
            r.merge,
            r.cycles_saved,
            if re {
                " (Read2 becomes fully redundant here)"
            } else {
                " (no redundancy on this path)"
            },
        );
    }

    let stats = compile(&mut graph, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&graph).unwrap();
    println!(
        "\n=== Listing 6 (after {} duplication(s)) ===\n{}",
        stats.duplications,
        print_graph(&graph)
    );

    // At most one load remains on the true path: count loads per block.
    let total_loads: usize = graph
        .reachable_blocks()
        .into_iter()
        .flat_map(|b| graph.block_insts(b).to_vec())
        .filter(|&i| matches!(graph.inst(i), Inst::LoadField { .. }))
        .count();
    println!("loads remaining: {total_loads} (was 2 with a shared Read2)");

    // Check semantics on both paths.
    let class_a = table.class_by_name("A").unwrap();
    let field_x = table.field_by_name(class_a, "x").unwrap();
    let class_s = table.class_by_name("S").unwrap();
    for i in [5i64, -5] {
        let mut heap = Heap::new();
        let a = heap.alloc_object(&table, class_a);
        heap.set_field(&table, a, field_x, Value::Int(77));
        let statics = heap.alloc_object(&table, class_s);
        let r = execute_with_heap(
            &graph,
            &[a, Value::Int(i), statics],
            &mut heap,
            DEFAULT_FUEL,
        );
        println!("foo(A{{x: 77}}, {i}) = {:?}", r.outcome);
        assert_eq!(r.outcome, Ok(Value::Int(77)));
    }
}
