//! The §8 future-work extension: duplication over multiple merges along
//! a path.
//!
//! The shipped DBDS implementation duplicates one merge at a time; §8
//! asks whether following the simulation through *chains* of merges can
//! buy more performance. This example builds a two-merge chain where the
//! constant from the first merge's φ only becomes profitable inside the
//! *second* merge's block, and shows that
//! `DbdsConfig::max_path_length = 2` finds and exploits it.
//!
//! ```text
//! cargo run --example path_duplication
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate_paths, DbdsConfig, OptLevel, TradeoffConfig};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_module, print_graph, verify, Value};

const CHAINED: &str = r#"
    func @chained(x: int, c0: bool, c1: bool) {
    entry:
      zero: int = const 0
      thirteen: int = const 13
      twelve: int = const 12
      branch c0, left, right, prob 0.7
    left:
      branch c1, bt1, bf1, prob 0.5
    bt1:
      jump m1
    bf1:
      jump m1
    m1:
      p: int = phi [bt1: x, bf1: thirteen]
      jump m2
    right:
      jump m2
    m2:
      q: int = phi [m1: p, right: zero]
      r: int = add q, twelve
      s: int = mul r, r
      return s
    }
"#;

fn main() {
    let module = parse_module(CHAINED).expect("chained program parses");
    let model = CostModel::new();
    println!(
        "=== Two chained merges (m1 → m2) ===\n{}",
        print_graph(&module.graphs[0])
    );

    // Path-aware simulation: every prefix of a path is a candidate.
    println!("=== Simulation with max_path_length = 2 ===");
    for r in simulate_paths(&module.graphs[0], &model, &mut AnalysisCache::new(), 2) {
        println!(
            "pred {} → path {:?}: CS {:.1}, cost {}",
            r.pred, r.path, r.cycles_saved, r.size_cost
        );
    }

    let cfg_for = |path_len: usize| DbdsConfig {
        max_path_length: path_len,
        tradeoff: TradeoffConfig {
            size_increase_budget: 3.0, // tiny demo unit needs headroom
            ..TradeoffConfig::default()
        },
        ..DbdsConfig::default()
    };

    for path_len in [1usize, 2] {
        let mut g = module.graphs[0].clone();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg_for(path_len));
        verify(&g).unwrap();
        // Dynamic cycles on the constant-carrying path (c0 = true, c1 = false).
        let args = [Value::Int(5), Value::Bool(true), Value::Bool(false)];
        let r = execute(&g, &args);
        let cycles = model.dynamic_cycles(&r.counts);
        println!(
            "\nmax_path_length = {path_len}: {} duplication(s), bf1 path runs in {cycles} cycles",
            stats.duplications
        );
        if path_len == 2 {
            println!(
                "=== Optimized with path duplication ===\n{}",
                print_graph(&g)
            );
        }
        assert_eq!(r.outcome, Ok(Value::Int(625)), "13+12 squared");
    }
}
