//! Figure 3 of the paper: the worked simulation example.
//!
//! Program `f` divides `x` by `φ(x, 2)`. During the duplication simulation
//! traversal of the false predecessor, the φ's synonym is the constant 2,
//! the strength-reduction applicability check fires on the division, and
//! the action step returns `x >> 1`. The static performance estimator
//! prices the division at 32 cycles and the shift at 1, so the simulation
//! reports CS = 31 — the exact number from §4.1.
//!
//! (The reduction `x / 2 → x >> 1` is only valid for non-negative `x`, so
//! the program guards `x ≥ 0` first; the stamp system propagates that
//! fact into the simulation.)
//!
//! ```text
//! cargo run --example strength_reduction
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_module, print_graph, verify, BinOp, Inst, Value};
use dbds::opt::OptKind;

const PROGRAM_F: &str = r#"
    func @f(a: int, b: int, x: int) {
    entry:
      zero: int = const 0
      guard: bool = cmp ge x, zero
      branch guard, bg, bdeopt, prob 0.999
    bdeopt:
      deopt
    bg:
      two: int = const 2
      c: bool = cmp gt a, b
      branch c, bp1, bp2, prob 0.5
    bp1:
      jump bm
    bp2:
      jump bm
    bm:
      p: int = phi [bp1: x, bp2: two]
      q: int = div x, p
      return q
    }
"#;

fn main() {
    let module = parse_module(PROGRAM_F).expect("program f parses");
    let mut graph = module.graphs.into_iter().next().unwrap();
    verify(&graph).unwrap();
    println!("=== Program f (Figure 3a) ===\n{}", print_graph(&graph));

    let model = CostModel::new();
    println!("=== Duplication simulation (Figure 3c/3d) ===");
    for r in simulate(&graph, &model, &mut AnalysisCache::new()) {
        println!(
            "pred {} → merge {}: CS = {:.0}",
            r.pred, r.merge, r.cycles_saved
        );
        for o in &r.opportunities {
            println!(
                "    {} on {}: saves {:.0} cycles",
                o.kind, o.inst, o.cycles_saved
            );
        }
    }
    // The constant path must report exactly CS = 31 (div 32 → shr 1).
    let results = simulate(&graph, &model, &mut AnalysisCache::new());
    let best = results
        .iter()
        .map(|r| r.cycles_saved)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(best, 31.0, "Figure 3's CS is 32 − 1 = 31");
    assert!(results
        .iter()
        .flat_map(|r| &r.opportunities)
        .any(|o| o.kind == OptKind::StrengthReduce));

    let stats = compile(&mut graph, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&graph).unwrap();
    println!(
        "=== After duplication (Figure 3e): {} duplication(s) ===\n{}",
        stats.duplications,
        print_graph(&graph)
    );

    // One path now shifts instead of dividing.
    let has_shift = graph
        .reachable_blocks()
        .into_iter()
        .flat_map(|b| graph.block_insts(b).to_vec())
        .any(|i| matches!(graph.inst(i), Inst::Binary { op: BinOp::Shr, .. }));
    assert!(has_shift, "expected a right shift in the optimized graph");
    println!("the division became a right shift on the constant path ✓");

    for (a, b, x, expected) in [(5i64, 3i64, 12i64, 1i64), (1, 3, 12, 6)] {
        let r = execute(&graph, &[Value::Int(a), Value::Int(b), Value::Int(x)]);
        assert_eq!(r.outcome, Ok(Value::Int(expected)));
        println!("f({a}, {b}, {x}) = {expected}");
    }
}
