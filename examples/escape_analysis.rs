//! Listings 3–4 of the paper: partial escape analysis and scalar
//! replacement enabled by duplication.
//!
//! ```java
//! class A { int x; A(int x) { this.x = x; } }
//! int foo(A a) {
//!     A p;
//!     if (a == null) { p = new A(0); } else { p = a; }
//!     return p.x;
//! }
//! ```
//!
//! The fresh `new A(0)` escapes only through the φ. After duplicating the
//! merge into the allocating predecessor, the φ is gone, the object no
//! longer escapes, and scalar replacement dissolves it: that path simply
//! returns 0 (Listing 4).
//!
//! ```text
//! cargo run --example escape_analysis
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{
    execute_with_heap, parse_module, print_graph, verify, Heap, Inst, Value, DEFAULT_FUEL,
};
use dbds::opt::OptKind;

const LISTING3: &str = r#"
    class A { x: int }
    func @foo(a: ref A) {
    entry:
      null: ref A = const null A
      isnull: bool = cmp eq a, null
      branch isnull, balloc, bpass, prob 0.3
    balloc:
      fresh: ref A = new A
      zero: int = const 0
      init: void = store fresh, A.x, zero
      jump bm
    bpass:
      jump bm
    bm:
      p: ref A = phi [balloc: fresh, bpass: a]
      v: int = load p, A.x
      return v
    }
"#;

fn main() {
    let module = parse_module(LISTING3).expect("listing 3 parses");
    let table = module.class_table.clone();
    let mut graph = module.graphs.into_iter().next().unwrap();
    verify(&graph).unwrap();
    println!("=== Listing 3 ===\n{}", print_graph(&graph));

    let model = CostModel::new();
    for r in simulate(&graph, &model, &mut AnalysisCache::new()) {
        let pea = r
            .opportunities
            .iter()
            .any(|o| o.kind == OptKind::ScalarReplace);
        println!(
            "pred {} → merge {}: CS {:.1}, size cost {}{}",
            r.pred,
            r.merge,
            r.cycles_saved,
            r.size_cost,
            if pea {
                " (allocation predicted removable)"
            } else {
                ""
            },
        );
    }

    let stats = compile(&mut graph, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&graph).unwrap();
    println!(
        "\n=== Listing 4 (after {} duplication(s)) ===\n{}",
        stats.duplications,
        print_graph(&graph)
    );

    // The allocation is gone from the optimized graph.
    let allocs = graph
        .reachable_blocks()
        .into_iter()
        .flat_map(|b| graph.block_insts(b).to_vec())
        .filter(|&i| matches!(graph.inst(i), Inst::New { .. }))
        .count();
    println!("remaining allocations: {allocs}");
    assert_eq!(allocs, 0, "scalar replacement removed the allocation");

    // Null path returns 0; non-null path returns a.x.
    let class_a = table.class_by_name("A").unwrap();
    let field_x = table.field_by_name(class_a, "x").unwrap();

    let mut heap = Heap::new();
    let r = execute_with_heap(&graph, &[Value::Ref(None)], &mut heap, DEFAULT_FUEL);
    println!("foo(null) = {:?}", r.outcome);
    assert_eq!(r.outcome, Ok(Value::Int(0)));

    let mut heap = Heap::new();
    let obj = heap.alloc_object(&table, class_a);
    heap.set_field(&table, obj, field_x, Value::Int(41));
    let r = execute_with_heap(&graph, &[obj], &mut heap, DEFAULT_FUEL);
    println!("foo(A{{x: 41}}) = {:?}", r.outcome);
    assert_eq!(r.outcome, Ok(Value::Int(41)));
}
