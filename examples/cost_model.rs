//! Figure 4 of the paper: the node cost model at work.
//!
//! A merge block containing `Mul(φ, 3)`, a `Store` and a `Return` costs
//! `0 + 2 + 10 + 2 = 14` cycles. After duplicating it into a 90%- and a
//! 10%-probability predecessor, the multiplication constant-folds on the
//! hot path and the probability-weighted cost drops to
//! `0.1·(10+2+2) + 0.9·(10+2) = 12.2` cycles — exactly the numbers
//! printed in Figure 4.
//!
//! ```text
//! cargo run --example cost_model
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, DbdsConfig, OptLevel, TradeoffConfig};
use dbds::costmodel::CostModel;
use dbds::ir::{print_graph, verify, ClassTable, GraphBuilder, InstKind, Type};
use std::sync::Arc;

fn weighted(g: &dbds::ir::Graph, model: &CostModel) -> f64 {
    model.weighted_cycles(g, &mut AnalysisCache::new())
}

fn main() {
    let model = CostModel::new();
    println!("Node cost table excerpts (cycles / size):");
    for kind in [
        InstKind::Const,
        InstKind::Phi,
        InstKind::Mul,
        InstKind::Div,
        InstKind::Shr,
        InstKind::New,
        InstKind::LoadField,
        InstKind::StoreField,
        InstKind::Return,
    ] {
        println!(
            "  {:<10} {:>3} / {:<3}",
            kind.name(),
            model.cycles(kind),
            model.size(kind)
        );
    }

    // The Figure 4 diamond: φ(3, param0) · 3, stored and returned.
    let mut t = ClassTable::new();
    let cls = t.add_class("Sink");
    let field = t.add_field(cls, "s", Type::Int);
    // The store targets an escaped object (the paper stores to a static
    // field) — passed in as a parameter here so scalar replacement cannot
    // remove it and the example isolates the Figure 4 arithmetic.
    let mut b = GraphBuilder::new(
        "fig4",
        &[Type::Int, Type::Bool, Type::Ref(cls)],
        Arc::new(t),
    );
    let p0 = b.param(0);
    let cond = b.param(1);
    let obj = b.param(2);
    let three = b.iconst(3);
    let (b1, b2, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(cond, b1, b2, 0.9);
    b.switch_to(b1);
    b.jump(bm);
    b.switch_to(b2);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![three, p0], Type::Int);
    let mul = b.mul(phi, three);
    b.store(obj, field, mul);
    b.ret(Some(mul));
    let mut graph = b.finish();
    verify(&graph).unwrap();

    let merge_cycles = model.block_cycles(&graph, bm);
    println!(
        "\n=== Figure 4, before duplication ===\n{}",
        print_graph(&graph)
    );
    println!("merge block static cost: {merge_cycles} cycles (paper: 14)");
    assert_eq!(merge_cycles, 14);

    let before = weighted(&graph, &model);
    // This demonstration unit is a handful of instructions, so the
    // default 1.5× growth budget (meant for real compilation units)
    // blocks any duplication; give it room.
    let cfg = DbdsConfig {
        tradeoff: TradeoffConfig {
            size_increase_budget: 3.0,
            ..TradeoffConfig::default()
        },
        ..DbdsConfig::default()
    };
    compile(&mut graph, &model, OptLevel::Dbds, &cfg);
    verify(&graph).unwrap();
    let after = weighted(&graph, &model);

    println!(
        "\n=== After duplication + constant folding ===\n{}",
        print_graph(&graph)
    );
    println!("probability-weighted cycles: {before:.1} → {after:.1}");
    println!("(Figure 4 reports the duplicated merge region dropping from 14 to 12.2 cycles;");
    println!(" the totals above additionally include the entry block.)");
    assert!(after < before, "duplication must reduce the estimate");
    // Figure 4's arithmetic: the hot path's mul (2 cycles × 0.9
    // probability) folds away, saving 1.8 cycles. Our totals additionally
    // drop the jump of the merged hot-path block (1 cycle × 0.9 + 0.1),
    // landing at ≈2.8.
    let saved = before - after;
    assert!(
        (1.7..=3.2).contains(&saved),
        "expected Figure 4's ≈1.8 plus control-transfer savings, got {saved:.2}"
    );
}
