//! Listings 1–2 of the paper: conditional elimination after duplication.
//!
//! ```java
//! int foo(int i) {
//!     int p;
//!     if (i > 0) { p = i; } else { p = 13; }
//!     if (p > 12) { return 12; }
//!     return i;
//! }
//! ```
//!
//! On the else path `p = 13`, so `p > 12` is provably true — but only
//! after the merge is duplicated. DBDS detects this during simulation
//! (the φ's synonym is the constant 13) and the optimization tier
//! produces Listing 2's shape.
//!
//! ```text
//! cargo run --example conditional_elimination
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, parse_module, print_graph, verify, Value};
use dbds::opt::OptKind;

const LISTING1: &str = r#"
    func @foo(i: int) {
    entry:
      zero: int = const 0
      thirteen: int = const 13
      twelve: int = const 12
      c: bool = cmp gt i, zero
      branch c, bt, bf, prob 0.5
    bt:
      jump bm
    bf:
      jump bm
    bm:
      p: int = phi [bt: i, bf: thirteen]
      c2: bool = cmp gt p, twelve
      branch c2, b12, bi, prob 0.5
    b12:
      return twelve
    bi:
      return i
    }
"#;

fn main() {
    let module = parse_module(LISTING1).expect("listing 1 parses");
    let mut graph = module.graphs.into_iter().next().unwrap();
    verify(&graph).unwrap();
    println!("=== Listing 1 ===\n{}", print_graph(&graph));

    // The simulation finds the conditional-elimination opportunity on the
    // else predecessor only.
    let model = CostModel::new();
    for r in simulate(&graph, &model, &mut AnalysisCache::new()) {
        let ce = r
            .opportunities
            .iter()
            .filter(|o| o.kind == OptKind::ConditionalElim)
            .count();
        println!(
            "pred {} → merge {}: {} conditional-elimination opportunit{}, total CS {:.1}",
            r.pred,
            r.merge,
            ce,
            if ce == 1 { "y" } else { "ies" },
            r.cycles_saved,
        );
    }

    let stats = compile(&mut graph, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&graph).unwrap();
    println!(
        "\n=== Listing 2 (after {} duplication(s)) ===\n{}",
        stats.duplications,
        print_graph(&graph)
    );

    // Semantics of the original function, checked across the interesting
    // inputs: i ≤ 0 → 12; 0 < i ≤ 12 → i; i > 12 → 12.
    for (input, expected) in [
        (-5i64, 12i64),
        (0, 12),
        (1, 1),
        (12, 12),
        (13, 12),
        (99, 12),
    ] {
        let r = execute(&graph, &[Value::Int(input)]);
        assert_eq!(r.outcome, Ok(Value::Int(expected)), "foo({input})");
        println!("foo({input}) = {expected}");
    }
}
