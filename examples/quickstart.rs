//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds `int foo(int x) { int phi; if (x > 0) phi = x; else phi = 0;
//! return 2 + phi; }`, shows the simulation tier pricing the duplication
//! of the merge into each predecessor, runs the full DBDS phase, and
//! prints the IR before and after (Figure 1a → Figure 1c).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dbds::analysis::AnalysisCache;
use dbds::core::{compile, simulate, DbdsConfig, OptLevel};
use dbds::costmodel::CostModel;
use dbds::ir::{execute, print_graph, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
use std::sync::Arc;

fn main() {
    // Figure 1a.
    let mut b = GraphBuilder::new("foo", &[Type::Int], Arc::new(ClassTable::new()));
    let x = b.param(0);
    let zero = b.iconst(0);
    let cond = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(cond, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![x, zero], Type::Int);
    let two = b.iconst(2);
    let sum = b.add(two, phi);
    b.ret(Some(sum));
    let mut graph = b.finish();
    verify(&graph).expect("Figure 1a is well-formed");

    println!(
        "=== Figure 1a: initial program ===\n{}",
        print_graph(&graph)
    );

    // The simulation tier: one result per predecessor→merge pair, no IR
    // copied or mutated.
    let model = CostModel::new();
    println!("=== Simulation tier ===");
    for r in simulate(&graph, &model, &mut AnalysisCache::new()) {
        println!(
            "duplicate {} into {}: cycles saved {:.1}, size cost {}, p = {:.2}, {} opportunit{}",
            r.merge,
            r.pred,
            r.cycles_saved,
            r.size_cost,
            r.probability,
            r.opportunities.len(),
            if r.opportunities.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
        for o in &r.opportunities {
            println!(
                "    {} on {} saves {:.1} cycles",
                o.kind, o.inst, o.cycles_saved
            );
        }
    }

    // The full three-tier phase (simulate → trade-off → optimize).
    let stats = compile(&mut graph, &model, OptLevel::Dbds, &DbdsConfig::default());
    verify(&graph).expect("DBDS preserves well-formedness");
    println!(
        "\n=== DBDS performed {} duplication(s) over {} candidate(s) ===\n",
        stats.duplications, stats.candidates
    );
    println!(
        "=== Figure 1c: after duplication + optimization ===\n{}",
        print_graph(&graph)
    );

    // Both paths still compute the same results.
    for v in [5i64, -3] {
        let r = execute(&graph, &[Value::Int(v)]);
        println!("foo({v}) = {:?}", r.outcome);
    }
    assert_eq!(execute(&graph, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
    assert_eq!(
        execute(&graph, &[Value::Int(-3)]).outcome,
        Ok(Value::Int(2))
    );
}
